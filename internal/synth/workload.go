package synth

import (
	"fmt"

	"twodprof/internal/rng"
	"twodprof/internal/trace"
)

// Workload is one (benchmark, input set) combination: an immutable site
// population with resolved per-segment parameters plus the run recipe.
// It implements trace.Source; every Run replays the identical stream.
//
// Control-flow model: sites are partitioned into "blocks" (inner-loop
// bodies). A run is a sequence of block visits; each visit iterates the
// block's sites in order for a geometrically distributed number of
// iterations. This burst structure gives the global history register
// the repetitive texture of real programs, which history-based
// predictors (gshare, perceptron) rely on — i.i.d. interleaving would
// reduce them to noise.
type Workload struct {
	Name      string // benchmark name
	Input     string // input set name
	Sites     []Site
	Blocks    [][]int   // site indices per block; a partition of Sites
	BlockW    []float64 // block visit weights (execution frequency)
	MeanIters float64   // mean loop iterations per block visit
	DynTarget int64     // approximate dynamic branch count per run
	Segments  int       // data segments per run
	Seed      uint64    // stream seed (a property of the input data)

	cat *rng.Categorical
}

// NewWorkload validates and finalises a workload.
func NewWorkload(name, input string, sites []Site, blocks [][]int, blockW []float64, meanIters float64, dynTarget int64, segments int, seed uint64) (*Workload, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("synth: workload %s/%s has no sites", name, input)
	}
	if len(blocks) == 0 || len(blockW) != len(blocks) {
		return nil, fmt.Errorf("synth: workload %s/%s: bad block structure (%d blocks, %d weights)",
			name, input, len(blocks), len(blockW))
	}
	if meanIters < 1 {
		return nil, fmt.Errorf("synth: workload %s/%s: mean iterations %f < 1", name, input, meanIters)
	}
	if dynTarget <= 0 {
		return nil, fmt.Errorf("synth: workload %s/%s: non-positive dynamic target", name, input)
	}
	if segments <= 0 {
		return nil, fmt.Errorf("synth: workload %s/%s: non-positive segment count", name, input)
	}
	seen := make([]bool, len(sites))
	for b, blk := range blocks {
		if len(blk) == 0 {
			return nil, fmt.Errorf("synth: workload %s/%s: empty block %d", name, input, b)
		}
		for _, idx := range blk {
			if idx < 0 || idx >= len(sites) {
				return nil, fmt.Errorf("synth: workload %s/%s: block %d references site %d of %d",
					name, input, b, idx, len(sites))
			}
			if seen[idx] {
				return nil, fmt.Errorf("synth: workload %s/%s: site %d in multiple blocks", name, input, idx)
			}
			seen[idx] = true
		}
	}
	for i, s := range seen {
		if !s {
			return nil, fmt.Errorf("synth: workload %s/%s: site %d not in any block", name, input, i)
		}
	}
	for i, s := range sites {
		if len(s.SegParam) != segments {
			return nil, fmt.Errorf("synth: workload %s/%s: site %d has %d segment params, want %d",
				name, input, i, len(s.SegParam), segments)
		}
	}
	return &Workload{
		Name: name, Input: input, Sites: sites,
		Blocks: blocks, BlockW: blockW, MeanIters: meanIters,
		DynTarget: dynTarget, Segments: segments, Seed: seed,
		cat: rng.NewCategorical(blockW),
	}, nil
}

// MustNewWorkload is NewWorkload panicking on error.
func MustNewWorkload(name, input string, sites []Site, blocks [][]int, blockW []float64, meanIters float64, dynTarget int64, segments int, seed uint64) *Workload {
	w, err := NewWorkload(name, input, sites, blocks, blockW, meanIters, dynTarget, segments, seed)
	if err != nil {
		panic(err)
	}
	return w
}

// String identifies the workload.
func (w *Workload) String() string { return w.Name + "/" + w.Input }

// Run implements trace.Source: it emits the deterministic branch stream
// into sink and returns the number of events.
func (w *Workload) Run(sink trace.Sink) int64 {
	r := rng.New(w.Seed)
	states := make([]siteState, len(w.Sites))
	var emitted int64
	var hist uint64

	emit := func(pc trace.PC, taken bool) {
		sink.Branch(pc, taken)
		hist <<= 1
		if taken {
			hist |= 1
		}
		emitted++
	}

	// Small blocks iterate more per visit (tight inner loops), which
	// keeps the share of history-cold block-entry executions low for
	// every site regardless of block size.
	pIter := make([]float64, len(w.Blocks))
	for i, blk := range w.Blocks {
		mean := w.MeanIters * (0.5 + 16/float64(len(blk)))
		pIter[i] = 1 / mean
	}
	for emitted < w.DynTarget {
		bi := w.cat.Draw(r)
		blk := w.Blocks[bi]
		iters := r.Geometric(pIter[bi])
		for it := 0; it < iters && emitted < w.DynTarget; it++ {
			seg := w.segmentOf(emitted)
			for _, idx := range blk {
				site := &w.Sites[idx]
				if site.Arch == Loop {
					trips := site.visitLen(seg, r)
					for t := 0; t < trips-1; t++ {
						emit(site.PC, true)
					}
					emit(site.PC, false)
					continue
				}
				emit(site.PC, site.next(&states[idx], seg, r, hist, it))
			}
		}
	}
	return emitted
}

// segmentOf maps a stream position to its data segment.
func (w *Workload) segmentOf(emitted int64) int {
	seg := int(emitted * int64(w.Segments) / w.DynTarget)
	if seg >= w.Segments {
		seg = w.Segments - 1
	}
	return seg
}

// SitePCs returns the PCs of all sites in index order.
func (w *Workload) SitePCs() []trace.PC {
	out := make([]trace.PC, len(w.Sites))
	for i, s := range w.Sites {
		out[i] = s.PC
	}
	return out
}
