package synth

import (
	"testing"

	"twodprof/internal/rng"
	"twodprof/internal/trace"
)

func TestTripsOf(t *testing.T) {
	if got := TripsOf(0); got != 2 {
		t.Fatalf("TripsOf(0) = %d", got)
	}
	if got := TripsOf(1); got < 38 || got > 45 {
		t.Fatalf("TripsOf(1) = %d", got)
	}
	// Monotone non-decreasing.
	prev := 0
	for k := 0.0; k <= 1.0; k += 0.05 {
		v := TripsOf(k)
		if v < prev {
			t.Fatalf("TripsOf not monotone at %v: %d < %d", k, v, prev)
		}
		prev = v
	}
	// Clamped outside [0,1].
	if TripsOf(-1) != TripsOf(0) || TripsOf(2) != TripsOf(1) {
		t.Fatal("TripsOf not clamped")
	}
}

func TestArchString(t *testing.T) {
	want := []string{"bernoulli", "loop", "pattern", "correlated"}
	for i, w := range want {
		if got := Arch(i).String(); got != w {
			t.Errorf("Arch(%d) = %q", i, got)
		}
	}
	if Arch(9).String() == "" {
		t.Fatal("unknown arch empty")
	}
}

// miniWorkload builds a tiny two-block workload by hand.
func miniWorkload(t *testing.T, dyn int64) *Workload {
	t.Helper()
	seg := func(v float64) []float64 {
		s := make([]float64, 4)
		for i := range s {
			s[i] = v
		}
		return s
	}
	sites := []Site{
		{PC: 100, Arch: Bernoulli, SegParam: seg(0.9)},
		{PC: 104, Arch: Loop, SegParam: seg(0.2)},
		{PC: 108, Arch: Pattern, SegParam: seg(0.0), PatternBits: 0b101, PatternLen: 3},
		{PC: 112, Arch: Correlated, SegParam: seg(0.0), HistMask: 0b11},
	}
	w, err := NewWorkload("mini", "train", sites,
		[][]int{{0, 1}, {2, 3}}, []float64{2, 1}, 8, dyn, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWorkloadRunDeterministic(t *testing.T) {
	w := miniWorkload(t, 50000)
	var a, b trace.Recorder
	na := w.Run(&a)
	nb := w.Run(&b)
	if na != nb || len(a.Events) != len(b.Events) {
		t.Fatalf("non-deterministic: %d vs %d", na, nb)
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	if na < 50000 {
		t.Fatalf("emitted %d < target", na)
	}
	if na > 50000+2000 {
		t.Fatalf("overshot target badly: %d", na)
	}
}

func TestWorkloadCoversAllSites(t *testing.T) {
	w := miniWorkload(t, 50000)
	var c trace.Counter
	w.Run(&c)
	for _, pc := range w.SitePCs() {
		if c.ExecCount(pc) == 0 {
			t.Fatalf("site %v never executed", pc)
		}
	}
}

func TestLoopVisitShape(t *testing.T) {
	// A loop site's stream must be runs of taken ending in one
	// not-taken.
	w := miniWorkload(t, 50000)
	var events []trace.Event
	w.Run(trace.SinkFunc(func(pc trace.PC, taken bool) {
		if pc == 104 {
			events = append(events, trace.Event{PC: pc, Taken: taken})
		}
	}))
	run := 0
	for _, e := range events {
		if e.Taken {
			run++
			continue
		}
		// visit ended; run+1 trips total
		if run+1 < 2 {
			t.Fatalf("loop visit with %d trips", run+1)
		}
		run = 0
	}
}

func TestNewWorkloadValidation(t *testing.T) {
	seg := []float64{0.5, 0.5}
	site := Site{PC: 1, Arch: Bernoulli, SegParam: seg}
	cases := []struct {
		name string
		fn   func() (*Workload, error)
	}{
		{"no sites", func() (*Workload, error) {
			return NewWorkload("x", "i", nil, nil, nil, 8, 100, 2, 1)
		}},
		{"no blocks", func() (*Workload, error) {
			return NewWorkload("x", "i", []Site{site}, nil, nil, 8, 100, 2, 1)
		}},
		{"weight mismatch", func() (*Workload, error) {
			return NewWorkload("x", "i", []Site{site}, [][]int{{0}}, []float64{1, 2}, 8, 100, 2, 1)
		}},
		{"bad mean iters", func() (*Workload, error) {
			return NewWorkload("x", "i", []Site{site}, [][]int{{0}}, []float64{1}, 0.5, 100, 2, 1)
		}},
		{"bad dyn", func() (*Workload, error) {
			return NewWorkload("x", "i", []Site{site}, [][]int{{0}}, []float64{1}, 8, 0, 2, 1)
		}},
		{"bad segments", func() (*Workload, error) {
			return NewWorkload("x", "i", []Site{site}, [][]int{{0}}, []float64{1}, 8, 100, 0, 1)
		}},
		{"empty block", func() (*Workload, error) {
			return NewWorkload("x", "i", []Site{site}, [][]int{{}}, []float64{1}, 8, 100, 2, 1)
		}},
		{"site out of range", func() (*Workload, error) {
			return NewWorkload("x", "i", []Site{site}, [][]int{{5}}, []float64{1}, 8, 100, 2, 1)
		}},
		{"site twice", func() (*Workload, error) {
			return NewWorkload("x", "i", []Site{site}, [][]int{{0, 0}}, []float64{1}, 8, 100, 2, 1)
		}},
		{"site unassigned", func() (*Workload, error) {
			s2 := Site{PC: 2, Arch: Bernoulli, SegParam: seg}
			return NewWorkload("x", "i", []Site{site, s2}, [][]int{{0}}, []float64{1}, 8, 100, 2, 1)
		}},
		{"segment mismatch", func() (*Workload, error) {
			bad := Site{PC: 1, Arch: Bernoulli, SegParam: []float64{0.5}}
			return NewWorkload("x", "i", []Site{bad}, [][]int{{0}}, []float64{1}, 8, 100, 2, 1)
		}},
	}
	for _, c := range cases {
		if _, err := c.fn(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSegmentOf(t *testing.T) {
	w := miniWorkload(t, 1000)
	if w.segmentOf(0) != 0 {
		t.Fatal("segment of 0")
	}
	if w.segmentOf(999) != 3 {
		t.Fatalf("segment of last = %d", w.segmentOf(999))
	}
	if w.segmentOf(5000) != 3 { // overshoot clamps
		t.Fatal("segment overshoot not clamped")
	}
}

func TestPopulationGeneration(t *testing.T) {
	cfg := DefaultPopulationConfig("testbench", 123)
	cfg.NumSites = 200
	p := NewPopulation(cfg)
	if p.NumSites() != 200 {
		t.Fatalf("NumSites = %d", p.NumSites())
	}
	// PCs unique.
	seen := map[trace.PC]bool{}
	for i := 0; i < p.NumSites(); i++ {
		pc := p.SitePC(i)
		if seen[pc] {
			t.Fatalf("duplicate PC %v", pc)
		}
		seen[pc] = true
	}
	// Sensitive fraction near DepFrac (binomial tolerance).
	sens := len(p.SensitiveSites())
	want := cfg.DepFrac * 200
	if float64(sens) < want*0.5 || float64(sens) > want*1.8 {
		t.Fatalf("sensitive sites %d, want ~%.0f", sens, want)
	}
	// Describe round-trips.
	si, ok := p.Describe(p.SitePC(0))
	if !ok || si.PC != p.SitePC(0) {
		t.Fatal("Describe failed")
	}
	if _, ok := p.Describe(trace.PC(1)); ok {
		t.Fatal("Describe found unknown PC")
	}
}

func TestPopulationWorkloadResolution(t *testing.T) {
	cfg := DefaultPopulationConfig("testbench", 123)
	cfg.NumSites = 100
	cfg.DynTarget = 200000
	p := NewPopulation(cfg)

	// Same input resolves identically.
	w1 := p.Workload("train")
	w2 := p.Workload("train")
	var r1, r2 trace.Recorder
	w1.Run(&r1)
	w2.Run(&r2)
	if len(r1.Events) != len(r2.Events) {
		t.Fatal("same input resolved differently")
	}
	for i := range r1.Events {
		if r1.Events[i] != r2.Events[i] {
			t.Fatalf("event %d differs for same input", i)
		}
	}

	// Different inputs differ.
	w3 := p.Workload("ext-1")
	var r3 trace.Recorder
	w3.Run(&r3)
	same := 0
	n := len(r1.Events)
	if len(r3.Events) < n {
		n = len(r3.Events)
	}
	for i := 0; i < n; i++ {
		if r1.Events[i] == r3.Events[i] {
			same++
		}
	}
	if float64(same) > 0.99*float64(n) {
		t.Fatal("different inputs produced near-identical streams")
	}

	if w1.String() != "testbench/train" {
		t.Fatalf("String = %q", w1.String())
	}
}

func TestSensitiveSitesShiftMoreThanInsensitive(t *testing.T) {
	// The generator's core contract: across inputs, sensitive sites'
	// parameters move, insensitive sites' parameters barely move.
	cfg := DefaultPopulationConfig("testbench", 77)
	cfg.NumSites = 150
	cfg.DepFrac = 0.3
	p := NewPopulation(cfg)
	wa := p.Workload("train")
	wb := p.Workload("ref")

	var shiftSens, shiftIns float64
	var nSens, nIns int
	for i := range wa.Sites {
		si, _ := p.Describe(wa.Sites[i].PC)
		// Mean absolute per-segment parameter difference.
		d := 0.0
		for k := range wa.Sites[i].SegParam {
			diff := wa.Sites[i].SegParam[k] - wb.Sites[i].SegParam[k]
			if diff < 0 {
				diff = -diff
			}
			d += diff
		}
		d /= float64(len(wa.Sites[i].SegParam))
		if si.Sens >= 0.5 {
			shiftSens += d
			nSens++
		} else if si.Sens < 0.12 {
			shiftIns += d
			nIns++
		}
	}
	if nSens == 0 || nIns == 0 {
		t.Skip("degenerate population")
	}
	if shiftSens/float64(nSens) <= 2*shiftIns/float64(nIns) {
		t.Fatalf("sensitive shift %.4f not clearly above insensitive %.4f",
			shiftSens/float64(nSens), shiftIns/float64(nIns))
	}
}

func TestSiteNextTotality(t *testing.T) {
	// next() must be total for every archetype, including a lone Loop
	// call (used when loops appear outside visit-driving).
	r := rng.New(1)
	seg := []float64{0.5}
	var st siteState
	for _, arch := range []Arch{Bernoulli, Loop, Pattern, Correlated} {
		s := Site{PC: 1, Arch: arch, SegParam: seg, PatternBits: 0b10, PatternLen: 2, HistMask: 3}
		for i := 0; i < 100; i++ {
			s.next(&st, 0, r, uint64(i), i)
		}
	}
}
