// Package pipeline is a simple in-order timing model for VM programs
// with a pluggable branch predictor. It is the machine behind the
// paper's equation (1): every instruction has a base cost, taken
// control transfers insert a fetch bubble, and mispredicted conditional
// branches pay the pipeline-flush penalty. The model quantifies, in
// cycles, what the analytic cost model of internal/predication assumes.
package pipeline

import (
	"fmt"

	"twodprof/internal/bpred"
	"twodprof/internal/trace"
	"twodprof/internal/vm"
)

// Config holds the timing parameters in cycles.
type Config struct {
	// ALUCycles is the base cost of simple operations.
	ALUCycles int64
	// LoadCycles / StoreCycles are memory access costs.
	LoadCycles  int64
	StoreCycles int64
	// MulCycles / DivCycles are long-latency arithmetic costs.
	MulCycles int64
	DivCycles int64
	// TakenBubble is the fetch-redirect cost of any taken control
	// transfer (including unconditional jumps and calls).
	TakenBubble int64
	// MispPenalty is the flush cost of a mispredicted conditional
	// branch (the paper's Figure 2 uses 30).
	MispPenalty int64
	// Wish marks branches compiled as wish branches (Kim et al. [10]):
	// their hammock arms exist as predicated code, so a misprediction
	// recovers by completing the predicated path instead of flushing.
	Wish map[uint64]WishCost
}

// WishCost models a wish branch's cycle profile.
type WishCost struct {
	// Extra is paid on every execution: the predicated arms carry
	// guard computation the plain hammock does not.
	Extra int64
	// Recovery replaces the misprediction flush penalty: the cost of
	// completing the predicated other arm.
	Recovery int64
}

// DefaultConfig returns the paper-flavoured parameters: single-cycle
// ALU, 2-cycle loads, 30-cycle misprediction penalty.
func DefaultConfig() Config {
	return Config{
		ALUCycles:   1,
		LoadCycles:  2,
		StoreCycles: 1,
		MulCycles:   3,
		DivCycles:   12,
		TakenBubble: 1,
		MispPenalty: 30,
	}
}

// Validate reports a non-nil error for unusable parameters.
func (c Config) Validate() error {
	if c.ALUCycles <= 0 || c.LoadCycles <= 0 || c.StoreCycles <= 0 ||
		c.MulCycles <= 0 || c.DivCycles <= 0 {
		return fmt.Errorf("pipeline: instruction costs must be positive: %+v", c)
	}
	if c.TakenBubble < 0 || c.MispPenalty < 0 {
		return fmt.Errorf("pipeline: negative control-flow costs: %+v", c)
	}
	return nil
}

// cost returns the base cost of one opcode.
func (c Config) cost(op vm.Op) int64 {
	switch op {
	case vm.OpLd:
		return c.LoadCycles
	case vm.OpSt:
		return c.StoreCycles
	case vm.OpMul:
		return c.MulCycles
	case vm.OpDiv, vm.OpMod:
		return c.DivCycles
	case vm.OpJmp, vm.OpCall, vm.OpRet:
		return c.ALUCycles + c.TakenBubble
	default:
		return c.ALUCycles
	}
}

// Result summarises one timed execution.
type Result struct {
	Cycles      int64
	Insts       int64
	Branches    int64
	Mispredicts int64
	TakenBr     int64
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

// MispRate returns the conditional-branch misprediction rate in percent.
func (r Result) MispRate() float64 {
	if r.Branches == 0 {
		return 0
	}
	return 100 * float64(r.Mispredicts) / float64(r.Branches)
}

// Run executes prog on a machine with memWords of memory initialised
// from mem, timing it under cfg with the given predictor (which is
// reset first). A nil predictor models a perfect front end (no
// misprediction cost, taken bubbles only).
func Run(prog *vm.Program, mem []int64, pred bpred.Predictor, cfg Config, limits vm.Limits) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if pred != nil {
		pred.Reset()
	}

	// Precompute static per-instruction costs.
	costs := make([]int64, len(prog.Insts))
	for i, in := range prog.Insts {
		costs[i] = cfg.cost(in.Op)
	}

	m := vm.NewMachine(len(mem))
	copy(m.Mem, mem)
	m.SetLimits(limits)

	var res Result
	hooks := vm.Hooks{
		OnInst: func(pc uint64) {
			res.Cycles += costs[pc]
		},
		OnBranch: func(pc uint64, taken bool) {
			res.Branches++
			wish, isWish := cfg.Wish[pc]
			if isWish {
				res.Cycles += wish.Extra
			}
			if taken {
				res.TakenBr++
				res.Cycles += cfg.TakenBubble
			}
			if pred == nil {
				return
			}
			p := pred.Predict(trace.PC(pc))
			pred.Update(trace.PC(pc), taken)
			if p != taken {
				res.Mispredicts++
				if isWish {
					res.Cycles += wish.Recovery
				} else {
					res.Cycles += cfg.MispPenalty
				}
			}
		},
	}
	vmres, err := m.Run(prog, hooks)
	res.Insts = vmres.Steps
	return res, err
}
