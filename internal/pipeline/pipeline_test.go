package pipeline

import (
	"testing"

	"twodprof/internal/bpred"
	"twodprof/internal/progs"
	"twodprof/internal/vm"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.ALUCycles = 0
	if bad.Validate() == nil {
		t.Fatal("zero ALU cost accepted")
	}
	bad = DefaultConfig()
	bad.MispPenalty = -1
	if bad.Validate() == nil {
		t.Fatal("negative penalty accepted")
	}
}

func TestStraightLineCycles(t *testing.T) {
	prog, err := vm.Assemble("t", `
		li  r1, 1      ; 1 cycle
		ld  r2, [0]    ; 2 cycles
		st  [1], r2    ; 1 cycle
		mul r3, r1, r1 ; 3 cycles
		div r3, r1, r1 ; 12 cycles
		halt           ; 1 cycle
	`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, make([]int64, 8), nil, DefaultConfig(), vm.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 1+2+1+3+12+1 {
		t.Fatalf("cycles = %d, want 20", res.Cycles)
	}
	if res.Insts != 6 || res.Branches != 0 {
		t.Fatalf("insts=%d branches=%d", res.Insts, res.Branches)
	}
}

func TestBranchCosts(t *testing.T) {
	// One taken branch (loop back 4 times) + one final not-taken.
	prog, err := vm.Assemble("t", `
		li r1, 0
		li r2, 5
	loop:
		addi r1, r1, 1
		blt  r1, r2, loop
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	perfect, err := Run(prog, make([]int64, 4), nil, cfg, vm.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	// Instructions: 2 li + 5*(addi+blt) + halt = 13. Base cost 13,
	// taken bubbles: 4 taken branches.
	if perfect.Cycles != 13+4 {
		t.Fatalf("perfect cycles = %d, want 17", perfect.Cycles)
	}
	if perfect.Branches != 5 || perfect.TakenBr != 4 || perfect.Mispredicts != 0 {
		t.Fatalf("perfect %+v", perfect)
	}

	// Always-not-taken predictor mispredicts the 4 taken branches.
	ant := &bpred.Static{Dir: false}
	mis, err := Run(prog, make([]int64, 4), ant, cfg, vm.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if mis.Mispredicts != 4 {
		t.Fatalf("mispredicts = %d, want 4", mis.Mispredicts)
	}
	if mis.Cycles != perfect.Cycles+4*cfg.MispPenalty {
		t.Fatalf("cycles = %d, want %d", mis.Cycles, perfect.Cycles+4*cfg.MispPenalty)
	}
	if mis.MispRate() != 80 {
		t.Fatalf("misp rate %v", mis.MispRate())
	}
}

func TestIPCAndZeroDivision(t *testing.T) {
	var r Result
	if r.IPC() != 0 || r.MispRate() != 0 {
		t.Fatal("zero-value result not safe")
	}
	r = Result{Cycles: 10, Insts: 5, Branches: 0}
	if r.IPC() != 0.5 {
		t.Fatalf("IPC %v", r.IPC())
	}
}

func TestBetterPredictorFasterKernel(t *testing.T) {
	// On the bsearch kernel a real predictor must beat
	// always-not-taken, and the perceptron must not lose to it badly.
	inst, err := progs.StandardInput("bsearch", "train")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cyc := func(p bpred.Predictor) int64 {
		res, err := Run(inst.Kernel.Prog, inst.Mem, p, cfg, vm.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	staticNT := cyc(&bpred.Static{Dir: false})
	staticT := cyc(&bpred.Static{Dir: true})
	worst := staticNT
	if staticT > worst {
		worst = staticT
	}
	gshare := cyc(bpred.NewGshare4KB())
	perceptron := cyc(bpred.NewPerceptron16KB())
	perfect := cyc(nil)
	if gshare >= worst {
		t.Fatalf("gshare (%d cycles) not faster than the worse static predictor (%d)", gshare, worst)
	}
	if perfect >= gshare || perfect >= perceptron {
		t.Fatalf("perfect front end (%d) not fastest (gshare %d, perceptron %d)",
			perfect, gshare, perceptron)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	prog, _ := vm.Assemble("t", "halt")
	if _, err := Run(prog, nil, nil, Config{}, vm.Limits{}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestDeterminism(t *testing.T) {
	inst, _ := progs.StandardInput("fsm", "train")
	cfg := DefaultConfig()
	a, err := Run(inst.Kernel.Prog, inst.Mem, bpred.NewGshare4KB(), cfg, vm.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Run(inst.Kernel.Prog, inst.Mem, bpred.NewGshare4KB(), cfg, vm.Limits{})
	if a != b {
		t.Fatalf("non-deterministic timing: %+v vs %+v", a, b)
	}
}

func TestWishBranchCosts(t *testing.T) {
	prog, err := vm.Assemble("t", `
		li r1, 0
		li r2, 5
	loop:
		addi r1, r1, 1
		blt  r1, r2, loop
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	ant := &bpred.Static{Dir: false} // mispredicts all 4 taken branches
	plain, err := Run(prog, make([]int64, 4), ant, cfg, vm.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	// Mark the loop branch (instruction index 3) as a wish branch.
	cfg.Wish = map[uint64]WishCost{3: {Extra: 1, Recovery: 3}}
	wish, err := Run(prog, make([]int64, 4), &bpred.Static{Dir: false}, cfg, vm.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	// plain pays 4*30 for mispredicts; wish pays 5*1 extra + 4*3
	// recovery instead.
	want := plain.Cycles - 4*30 + 5*1 + 4*3
	if wish.Cycles != want {
		t.Fatalf("wish cycles %d, want %d (plain %d)", wish.Cycles, want, plain.Cycles)
	}
	if wish.Mispredicts != plain.Mispredicts {
		t.Fatalf("mispredict accounting changed: %d vs %d", wish.Mispredicts, plain.Mispredicts)
	}
}
