// Package predication implements the paper's motivating compiler
// optimisation: if-conversion guided by branch misprediction rates
// (§2.1, equations 1-3), the resulting decision procedure, and the
// wish-branch fallback for branches whose profile cannot be trusted
// because they are input-dependent.
package predication

import "fmt"

// CostModel carries the machine and region parameters of equations
// (1) and (2).
type CostModel struct {
	ExecTaken    float64 // exec_T: cycles when the branch is taken
	ExecNotTaken float64 // exec_N: cycles when the branch is not taken
	ExecPred     float64 // exec_pred: cycles of the if-converted region
	MispPenalty  float64 // machine misprediction penalty, cycles
}

// PaperExample returns the parameters the paper uses for Figure 2:
// exec_T = exec_N = 3, exec_pred = 5, penalty = 30.
func PaperExample() CostModel {
	return CostModel{ExecTaken: 3, ExecNotTaken: 3, ExecPred: 5, MispPenalty: 30}
}

// Validate reports a non-nil error for unusable parameters.
func (m CostModel) Validate() error {
	if m.ExecTaken < 0 || m.ExecNotTaken < 0 || m.ExecPred < 0 || m.MispPenalty < 0 {
		return fmt.Errorf("predication: negative cost parameter in %+v", m)
	}
	return nil
}

// BranchCost evaluates equation (1): the expected cycles of normal
// branch code given the branch's taken probability and misprediction
// probability (both in [0,1]).
func (m CostModel) BranchCost(pTaken, pMisp float64) float64 {
	return m.ExecTaken*pTaken + m.ExecNotTaken*(1-pTaken) + m.MispPenalty*pMisp
}

// PredicatedCost evaluates equation (2): predicated code always costs
// exec_pred.
func (m CostModel) PredicatedCost() float64 { return m.ExecPred }

// ShouldPredicate evaluates equation (3): convert when branch code is
// more expensive than predicated code.
func (m CostModel) ShouldPredicate(pTaken, pMisp float64) bool {
	return m.BranchCost(pTaken, pMisp) > m.PredicatedCost()
}

// BreakEvenMisp returns the misprediction rate at which branch code and
// predicated code cost the same, for a given taken probability. For the
// paper's Figure 2 parameters this is 7 % at any taken rate (exec_T ==
// exec_N). Returns 0 when predication is always cheaper and +Inf-free 1
// when it never is.
func (m CostModel) BreakEvenMisp(pTaken float64) float64 {
	if m.MispPenalty == 0 {
		if m.BranchCost(pTaken, 0) > m.PredicatedCost() {
			return 0
		}
		return 1
	}
	base := m.ExecTaken*pTaken + m.ExecNotTaken*(1-pTaken)
	be := (m.PredicatedCost() - base) / m.MispPenalty
	switch {
	case be < 0:
		return 0
	case be > 1:
		return 1
	default:
		return be
	}
}

// Decision is the compiler's choice for one branch.
type Decision int

const (
	// KeepBranch leaves the conditional branch as-is.
	KeepBranch Decision = iota
	// Predicate if-converts the hammock.
	Predicate
	// WishBranch emits predicated code guarded by a wish branch so the
	// hardware chooses at run time (the paper's recommendation for
	// input-dependent branches, citing Kim et al. [10]).
	WishBranch
)

// String returns the decision name.
func (d Decision) String() string {
	switch d {
	case KeepBranch:
		return "branch"
	case Predicate:
		return "predicate"
	case WishBranch:
		return "wish-branch"
	default:
		return "unknown"
	}
}

// Profile is the per-branch profile the compiler consults.
type Profile struct {
	PTaken float64 // profile-time taken probability, [0,1]
	PMisp  float64 // profile-time misprediction probability, [0,1]
	// InputDependent is 2D-profiling's verdict for the branch.
	InputDependent bool
}

// Policy decides per-branch code generation.
type Policy struct {
	Model CostModel
	// UseWishBranches controls what happens to input-dependent
	// branches: with wish branches available they become WishBranch;
	// otherwise the compiler conservatively keeps the branch.
	UseWishBranches bool
	// TrustProfile disables the input-dependence guard (the baseline
	// compiler that predicates on profile numbers alone).
	TrustProfile bool
}

// Decide implements the paper's §2.1 guidance: apply equation (3), but
// route input-dependent branches to a dynamic mechanism (or keep them)
// because their profiled misprediction rate cannot be trusted across
// inputs.
func (p Policy) Decide(pr Profile) Decision {
	wantPredicate := p.Model.ShouldPredicate(pr.PTaken, pr.PMisp)
	if !p.TrustProfile && pr.InputDependent {
		if p.UseWishBranches {
			return WishBranch
		}
		return KeepBranch
	}
	if wantPredicate {
		return Predicate
	}
	return KeepBranch
}

// RuntimeCost evaluates the cycles-per-instance cost of a decision under
// the *actual* run-time behaviour (which may differ from the profile for
// input-dependent branches). Wish branches are modelled as the paper
// describes: the hardware predicts confidence and uses predicated
// execution when the branch is hard to predict, branch prediction when
// it is easy, approximated here as min(branch cost, predicated cost)
// plus a small fixed overhead for the wish-branch instruction itself.
func (p Policy) RuntimeCost(d Decision, actualPTaken, actualPMisp float64) float64 {
	switch d {
	case Predicate:
		return p.Model.PredicatedCost()
	case WishBranch:
		const wishOverhead = 0.2 // extra fetch/decode cost of the wish branch
		bc := p.Model.BranchCost(actualPTaken, actualPMisp)
		pc := p.Model.PredicatedCost()
		if bc < pc {
			return bc + wishOverhead
		}
		return pc + wishOverhead
	default:
		return p.Model.BranchCost(actualPTaken, actualPMisp)
	}
}
