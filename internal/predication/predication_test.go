package predication

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperExampleBreakEven(t *testing.T) {
	m := PaperExample()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// With exec_T = exec_N = 3, exec_pred = 5, penalty = 30 the paper
	// reports a ~7% break-even misprediction rate.
	be := m.BreakEvenMisp(0.5)
	if math.Abs(be-2.0/30) > 1e-12 {
		t.Fatalf("break-even = %v, want %v", be, 2.0/30)
	}
	// Below break-even the branch is cheaper; above, predication.
	if m.ShouldPredicate(0.5, 0.04) {
		t.Fatal("predicated at 4% misprediction")
	}
	if !m.ShouldPredicate(0.5, 0.09) {
		t.Fatal("not predicated at 9% misprediction")
	}
}

func TestBranchCostEquation(t *testing.T) {
	m := CostModel{ExecTaken: 2, ExecNotTaken: 4, ExecPred: 5, MispPenalty: 10}
	// eq(1): 2*0.25 + 4*0.75 + 10*0.1 = 4.5
	if got := m.BranchCost(0.25, 0.1); got != 4.5 {
		t.Fatalf("BranchCost = %v", got)
	}
	if got := m.PredicatedCost(); got != 5 {
		t.Fatalf("PredicatedCost = %v", got)
	}
}

func TestBreakEvenClamps(t *testing.T) {
	// Predication always cheaper: break-even 0.
	m := CostModel{ExecTaken: 10, ExecNotTaken: 10, ExecPred: 5, MispPenalty: 30}
	if got := m.BreakEvenMisp(0.5); got != 0 {
		t.Fatalf("clamp low = %v", got)
	}
	// Predication never cheaper within [0,1].
	m = CostModel{ExecTaken: 1, ExecNotTaken: 1, ExecPred: 100, MispPenalty: 30}
	if got := m.BreakEvenMisp(0.5); got != 1 {
		t.Fatalf("clamp high = %v", got)
	}
	// Zero penalty degenerate cases.
	m = CostModel{ExecTaken: 1, ExecNotTaken: 1, ExecPred: 5, MispPenalty: 0}
	if got := m.BreakEvenMisp(0.5); got != 1 {
		t.Fatalf("zero-penalty, cheap branch: %v", got)
	}
	m = CostModel{ExecTaken: 9, ExecNotTaken: 9, ExecPred: 5, MispPenalty: 0}
	if got := m.BreakEvenMisp(0.5); got != 0 {
		t.Fatalf("zero-penalty, expensive branch: %v", got)
	}
}

func TestValidate(t *testing.T) {
	bad := CostModel{ExecTaken: -1}
	if bad.Validate() == nil {
		t.Fatal("negative cost accepted")
	}
}

func TestDecide(t *testing.T) {
	m := PaperExample()
	hard := Profile{PTaken: 0.5, PMisp: 0.12}
	easy := Profile{PTaken: 0.9, PMisp: 0.02}
	hardDep := Profile{PTaken: 0.5, PMisp: 0.12, InputDependent: true}

	plain := Policy{Model: m}
	if got := plain.Decide(hard); got != Predicate {
		t.Fatalf("hard branch: %v", got)
	}
	if got := plain.Decide(easy); got != KeepBranch {
		t.Fatalf("easy branch: %v", got)
	}
	// Conservative policy keeps input-dependent branches.
	if got := plain.Decide(hardDep); got != KeepBranch {
		t.Fatalf("dependent branch (conservative): %v", got)
	}
	// Wish-branch policy converts them to wish branches.
	wish := Policy{Model: m, UseWishBranches: true}
	if got := wish.Decide(hardDep); got != WishBranch {
		t.Fatalf("dependent branch (wish): %v", got)
	}
	// Profile-trusting policy ignores the verdict.
	trust := Policy{Model: m, TrustProfile: true}
	if got := trust.Decide(hardDep); got != Predicate {
		t.Fatalf("dependent branch (trusting): %v", got)
	}
	// Easy input-dependent branch under wish policy still becomes a
	// wish branch (hardware decides).
	easyDep := Profile{PTaken: 0.9, PMisp: 0.02, InputDependent: true}
	if got := wish.Decide(easyDep); got != WishBranch {
		t.Fatalf("easy dependent branch (wish): %v", got)
	}
}

func TestDecisionString(t *testing.T) {
	if KeepBranch.String() != "branch" || Predicate.String() != "predicate" ||
		WishBranch.String() != "wish-branch" || Decision(9).String() != "unknown" {
		t.Fatal("decision names wrong")
	}
}

func TestRuntimeCost(t *testing.T) {
	p := Policy{Model: PaperExample()}
	// Predicated code cost is flat.
	if got := p.RuntimeCost(Predicate, 0.5, 0.5); got != 5 {
		t.Fatalf("predicate cost %v", got)
	}
	// Branch cost follows equation (1).
	want := p.Model.BranchCost(0.3, 0.1)
	if got := p.RuntimeCost(KeepBranch, 0.3, 0.1); got != want {
		t.Fatalf("branch cost %v, want %v", got, want)
	}
}

func TestWishBranchNearOptimal(t *testing.T) {
	p := Policy{Model: PaperExample(), UseWishBranches: true}
	f := func(a, b uint8) bool {
		pTaken := float64(a) / 255
		pMisp := float64(b) / 255
		wish := p.RuntimeCost(WishBranch, pTaken, pMisp)
		best := math.Min(p.RuntimeCost(KeepBranch, pTaken, pMisp),
			p.RuntimeCost(Predicate, pTaken, pMisp))
		// Wish branch pays at most its fixed overhead over the better
		// of the two static choices and is never worse than 0.
		return wish >= best && wish <= best+0.2+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
