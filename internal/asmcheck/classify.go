package asmcheck

import (
	"fmt"

	"twodprof/internal/cfg"
	"twodprof/internal/vm"
)

// BranchClass is the static verdict for one conditional branch.
type BranchClass int

// The verdict kinds.
const (
	// ClassUnknown: analysis could not run (structurally broken
	// program).
	ClassUnknown BranchClass = iota
	// ClassUnreachable: no feasible execution reaches the branch.
	ClassUnreachable
	// ClassConstTaken: the condition is true on every execution.
	ClassConstTaken
	// ClassConstNotTaken: the condition is false on every execution.
	ClassConstNotTaken
	// ClassLoopBackedge: a loop-closing branch whose trip count is a
	// compile-time constant (Trip executions per loop entry, the last
	// one exiting).
	ClassLoopBackedge
	// ClassRangeConst: an operand carries input data, but the proven
	// value ranges decide the comparison the same way on every
	// execution (e.g. a masked flag tested against a larger constant).
	ClassRangeConst
	// ClassInputDependent: the condition is tainted by the input — an
	// operand derives from initial data memory, or the branch itself
	// executes under input-dependent control.
	ClassInputDependent
	// ClassInputIndependent: the condition varies between executions of
	// the branch, but only with constants and internal state (loop
	// counters, call contexts) — never with the input. Its outcome
	// sequence is identical under every input data set.
	ClassInputIndependent
)

// String returns the verdict keyword.
func (c BranchClass) String() string {
	switch c {
	case ClassUnreachable:
		return "unreachable"
	case ClassConstTaken:
		return "const-taken"
	case ClassConstNotTaken:
		return "const-not-taken"
	case ClassLoopBackedge:
		return "loop-backedge"
	case ClassRangeConst:
		return "input-range-constant"
	case ClassInputDependent:
		return "input-dependent"
	case ClassInputIndependent:
		return "input-independent"
	default:
		return "unknown"
	}
}

// StringWithTrip renders the verdict, including the trip count for
// loop back-edges: "loop-backedge(trip=4)".
func (c BranchClass) StringWithTrip(trip int64) string {
	if c == ClassLoopBackedge {
		return fmt.Sprintf("loop-backedge(trip=%d)", trip)
	}
	return c.String()
}

// MarshalText implements encoding.TextMarshaler for -json output.
func (c BranchClass) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// IsConst reports whether the verdict proves a single direction on
// every execution — the verdicts the 2D-profiling prefilter relies on:
// a const branch can never be input-dependent under any input set.
func (c BranchClass) IsConst() bool {
	return c == ClassConstTaken || c == ClassConstNotTaken
}

// InputInvariant reports whether the verdict proves the branch's
// outcome stream is identical under every input data set — the widened
// prefilter property: const branches, range-decided branches, and
// branches computed purely from internal state can never be flagged
// input-dependent by a correct 2D profiler. Loop back-edges are
// deliberately excluded: their pattern is input-invariant, but the
// claim stays conservative about predictor-table aliasing effects.
func (c BranchClass) InputInvariant() bool {
	return c.IsConst() || c == ClassRangeConst || c == ClassInputIndependent
}

// BranchVerdict is the classification of one static branch site.
type BranchVerdict struct {
	// Inst is the branch's instruction index (its trace.PC identity).
	Inst int `json:"inst"`
	// Line is the 1-based source line, 0 when unknown.
	Line int `json:"line,omitempty"`
	// Class is the verdict.
	Class BranchClass `json:"class"`
	// Trip is the per-entry execution count for ClassLoopBackedge.
	Trip int64 `json:"trip,omitempty"`
	// Dir is the proven direction for ClassRangeConst: "taken" or
	// "not-taken".
	Dir string `json:"dir,omitempty"`
	// Why explains the verdict.
	Why string `json:"why,omitempty"`
}

// String renders the verdict with its parameters: a loop back-edge
// carries its trip count ("loop-backedge(trip=4)") and a range-decided
// branch its direction ("input-range-constant(taken)").
func (v BranchVerdict) String() string {
	if v.Class == ClassRangeConst && v.Dir != "" {
		return fmt.Sprintf("input-range-constant(%s)", v.Dir)
	}
	return v.Class.StringWithTrip(v.Trip)
}

// tripSimBound caps the trip-count simulation; loops provably longer
// than this fall through to the taint verdicts rather than stalling
// the analysis.
const tripSimBound = 1 << 20

// classify assigns a verdict to every conditional branch. Precedence,
// most specific first: unreachable, const (SCCP decides the
// comparison), loop-backedge (proven trip count), input-range-constant
// (intervals decide the comparison), input-dependent (taint), and
// input-independent as the leftover — varying, but only with internal
// state.
func classify(p *vm.Program, cp *propagation, ta *taint, ra *ranges) []BranchVerdict {
	g := cfg.Build(p)
	// Call targets become extra CFG roots: the intraprocedural edge set
	// (calls fall through, ret/halt stop) leaves callee bodies
	// unreachable from the entry, which would hide their loops.
	roots := []int{0}
	seenRoot := map[int]bool{0: true}
	for _, in := range p.Insts {
		if in.Op != vm.OpCall {
			continue
		}
		if tb, ok := g.BlockOf(in.Target); ok && !seenRoot[tb.ID] {
			seenRoot[tb.ID] = true
			roots = append(roots, tb.ID)
		}
	}
	loops := g.NaturalLoopsFrom(roots)
	idom := g.DominatorsFrom(roots)

	var out []BranchVerdict
	for _, i := range vm.StaticBranches(p) {
		v := BranchVerdict{Inst: i, Line: p.Line(i)}
		in := p.Insts[i]
		switch a, b := cp.in[i][in.Rs1], cp.in[i][in.Rs2]; {
		case !cp.reached[i]:
			v.Class = ClassUnreachable
			v.Why = "no feasible execution reaches this branch"
		case a.kind == latConst && b.kind == latConst:
			if in.Cond.Eval(a.val, b.val) {
				v.Class = ClassConstTaken
			} else {
				v.Class = ClassConstNotTaken
			}
			v.Why = fmt.Sprintf("operands constant: r%d=%d, r%d=%d", in.Rs1, a.val, in.Rs2, b.val)
		default:
			if trip, why, ok := detectTrip(p, cp, g, loops, idom, i); ok {
				v.Class = ClassLoopBackedge
				v.Trip = trip
				v.Why = why
				break
			}
			if taken, ok, why := ra.decide(i, in); ok {
				v.Class = ClassRangeConst
				v.Dir = "not-taken"
				if taken {
					v.Dir = "taken"
				}
				v.Why = why
				break
			}
			switch ct := ta.condTaint(i, in); {
			case ct.data:
				v.Class = ClassInputDependent
				v.Why = fmt.Sprintf("r%d carries input-derived data at this point", ct.reg)
			case ct.ctrl:
				// Untainted operands are not enough: under
				// input-dependent control the branch's execution count
				// (hence its outcome stream) still varies with the
				// input.
				v.Class = ClassInputDependent
				v.Why = "executes under input-dependent control"
			default:
				v.Class = ClassInputIndependent
				v.Why = "operands derive from constants and internal state only"
			}
		}
		out = append(out, v)
	}
	return out
}

// detectTrip proves a compile-time trip count for the loop closed (or
// exited) by the conditional branch at instruction i. Requirements, all
// checked conservatively: the branch terminates the latch of a natural
// loop and is the loop's only exit; one branch operand is a constant
// bound (SCCP), the other an induction register with exactly one
// in-loop definition `addi r, r, step` executing once per iteration;
// the loop body contains no calls; and the induction register enters
// the loop with a constant value. The branch pattern is then simulated
// to the exit.
func detectTrip(p *vm.Program, cp *propagation, g *cfg.Graph, loops []cfg.Loop, idom []int, i int) (int64, string, bool) {
	blk, ok := g.BlockOf(i)
	if !ok || blk.End-1 != i {
		return 0, "", false
	}
	in := p.Insts[i]
	succs := g.StaticSuccs()

	// Innermost loop whose latch this branch terminates with one edge
	// back to the header and one leaving the loop.
	var loop *cfg.Loop
	for li := range loops {
		l := &loops[li]
		if l.Latch != blk.ID {
			continue
		}
		inLoop := map[int]bool{}
		for _, b := range l.Blocks {
			inLoop[b] = true
		}
		tgt := -1
		if tb, ok := g.BlockOf(in.Target); ok {
			tgt = tb.ID
		}
		fall := -1
		if fb, ok := g.BlockOf(blk.End); ok {
			fall = fb.ID
		}
		backIn := tgt == l.Header && !inLoop[fall]
		fallIn := fall == l.Header && !inLoop[tgt]
		if !backIn && !fallIn {
			continue
		}
		if loop == nil || len(l.Blocks) < len(loop.Blocks) {
			loop = l
		}
	}
	if loop == nil {
		return 0, "", false
	}
	inLoop := map[int]bool{}
	for _, b := range loop.Blocks {
		inLoop[b] = true
	}

	// Single exit: the only edge leaving the loop is this branch's.
	exits := 0
	for _, b := range loop.Blocks {
		for _, s := range succs[b] {
			if !inLoop[s] {
				exits++
			}
		}
	}
	if exits != 1 {
		return 0, "", false
	}

	// Operand split: constant bound vs induction candidate.
	a, b := cp.in[i][in.Rs1], cp.in[i][in.Rs2]
	var indReg uint8
	var bound int64
	var indIsRs1 bool
	switch {
	case a.kind == latConst && b.kind != latConst:
		bound, indReg, indIsRs1 = a.val, in.Rs2, false
	case b.kind == latConst && a.kind != latConst:
		bound, indReg, indIsRs1 = b.val, in.Rs1, true
	default:
		return 0, "", false
	}

	// Exactly one in-loop def of the induction register, of the form
	// addi r, r, step, in a block executing once per iteration; no
	// calls in the loop (a callee could redefine the register).
	defInst, defBlock := -1, -1
	for _, bid := range loop.Blocks {
		bb := g.Blocks[bid]
		for j := bb.Start; j < bb.End; j++ {
			if p.Insts[j].Op == vm.OpCall {
				return 0, "", false
			}
			if d, ok := p.Insts[j].Def(); ok && d == indReg {
				if defInst >= 0 {
					return 0, "", false
				}
				defInst, defBlock = j, bid
			}
		}
	}
	if defInst < 0 {
		return 0, "", false
	}
	def := p.Insts[defInst]
	if def.Op != vm.OpAddi || def.Rs1 != indReg {
		return 0, "", false
	}
	step := def.Imm
	if !cfg.Dominates(idom, defBlock, loop.Latch) {
		return 0, "", false
	}
	// The def must not sit in a nested loop (it would execute more
	// than once per outer iteration).
	for li := range loops {
		l := &loops[li]
		if l == loop || len(l.Blocks) >= len(loop.Blocks) {
			continue
		}
		nested := true
		hasDef := false
		for _, bid := range l.Blocks {
			if !inLoop[bid] {
				nested = false
			}
			if bid == defBlock {
				hasDef = true
			}
		}
		if nested && hasDef {
			return 0, "", false
		}
	}

	// Constant entry value: merge the induction register over the
	// feasible edges entering the header from outside the loop.
	loopInsts := map[int]bool{}
	for _, bid := range loop.Blocks {
		bb := g.Blocks[bid]
		for j := bb.Start; j < bb.End; j++ {
			loopInsts[j] = true
		}
	}
	header := g.Blocks[loop.Header].Start
	init := latval{}
	for j := range p.Insts {
		if loopInsts[j] || !cp.reached[j] {
			continue
		}
		for _, s := range cp.fsuccs[j] {
			if s == header {
				init = merge(init, cp.out[j][indReg])
			}
		}
	}
	if init.kind != latConst {
		return 0, "", false
	}

	// Simulate: the single def executes exactly once between loop entry
	// and each branch evaluation, so the branch's k-th execution sees
	// init + k*step. The taken direction stays in the loop iff the
	// branch target block is in the loop (the other direction is the
	// single exit, checked above).
	tgtBlk, _ := g.BlockOf(in.Target)
	takenStays := inLoop[tgtBlk.ID]
	v := init.val
	for trip := int64(1); trip <= tripSimBound; trip++ {
		v += step
		var taken bool
		if indIsRs1 {
			taken = in.Cond.Eval(v, bound)
		} else {
			taken = in.Cond.Eval(bound, v)
		}
		if taken != takenStays {
			why := fmt.Sprintf("induction r%d: entry %d, step %+d, bound %d", indReg, init.val, step, bound)
			return trip, why, true
		}
	}
	return 0, "", false
}
