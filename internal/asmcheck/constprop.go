package asmcheck

import (
	"fmt"
	"math"

	"twodprof/internal/vm"
)

// Lattice for sparse conditional constant propagation. Every register
// at every reached program point is either a known constant or varying;
// unreached marks states no execution can produce.
type latKind uint8

const (
	latUnreached latKind = iota
	latConst
	latVarying
)

type latval struct {
	kind latKind
	val  int64
}

func constOf(v int64) latval { return latval{kind: latConst, val: v} }

var varying = latval{kind: latVarying}

// merge joins two lattice values (unreached is the identity).
func merge(a, b latval) latval {
	switch {
	case a.kind == latUnreached:
		return b
	case b.kind == latUnreached:
		return a
	case a.kind == latConst && b.kind == latConst && a.val == b.val:
		return a
	default:
		return varying
	}
}

// regState is the abstract register file at one program point.
type regState [vm.NumRegs]latval

func (s *regState) set(rd uint8, v latval) {
	if rd != 0 { // r0 stays hardwired zero
		s[rd] = v
	}
}

// icfg is the instruction-level sound control-flow graph: call edges go
// to the callee and ret edges to every call-return point, so constant
// facts merge over all calling contexts (imprecise but sound).
type icfg struct {
	n           int
	callReturns []int
}

// propagation is the SCCP fixpoint: per-instruction in/out states, the
// reached set, and the feasible successor edges actually propagated
// (constant branch conditions prune the dead arm).
type propagation struct {
	in      []regState
	out     []regState
	reached []bool
	fsuccs  [][]int
	diags   []Diag
}

// propagate runs sparse conditional constant propagation to fixpoint.
// The entry state is all-registers-zero, matching vm.Machine.Run, which
// clears the register file before execution.
func propagate(p *vm.Program) *propagation {
	n := len(p.Insts)
	g := icfg{n: n}
	for i, in := range p.Insts {
		if in.Op == vm.OpCall {
			g.callReturns = append(g.callReturns, i+1)
		}
	}
	cp := &propagation{
		in:      make([]regState, n),
		out:     make([]regState, n),
		reached: make([]bool, n),
		fsuccs:  make([][]int, n),
	}
	trapped := map[string]bool{} // dedup trap diags across re-visits
	trap := func(i int, hint, format string, args ...interface{}) {
		key := fmt.Sprintf("%d:%s", i, format)
		if trapped[key] {
			return
		}
		trapped[key] = true
		cp.diags = append(cp.diags, Diag{
			Analysis: AnalysisConstProp, Severity: SevError,
			Inst: i, Line: p.Line(i),
			Msg: fmt.Sprintf(format, args...), Hint: hint,
		})
	}

	var work []int
	inWork := make([]bool, n)
	push := func(i int) {
		if i >= 0 && i < n && !inWork[i] {
			inWork[i] = true
			work = append(work, i)
		}
	}
	// Entry: all registers zero.
	for r := range cp.in[0] {
		cp.in[0][r] = constOf(0)
	}
	cp.reached[0] = true
	push(0)

	flow := func(from, to int) {
		if to < 0 || to >= n {
			return // structural verification already diagnosed this
		}
		changed := !cp.reached[to]
		cp.reached[to] = true
		for r := 1; r < vm.NumRegs; r++ {
			m := merge(cp.in[to][r], cp.out[from][r])
			if m != cp.in[to][r] {
				cp.in[to][r] = m
				changed = true
			}
		}
		cp.in[to][0] = constOf(0)
		if changed {
			push(to)
		}
	}

	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[i] = false

		st := cp.in[i]
		inst := p.Insts[i]
		succs := cp.fsuccs[i][:0]
		halted := false

		switch inst.Op {
		case vm.OpHalt:
			halted = true
		case vm.OpJmp:
			succs = append(succs, inst.Target)
		case vm.OpCall:
			succs = append(succs, inst.Target)
		case vm.OpRet:
			succs = append(succs, g.callReturns...)
		case vm.OpBr:
			a, b := st[inst.Rs1], st[inst.Rs2]
			if a.kind == latConst && b.kind == latConst {
				if inst.Cond.Eval(a.val, b.val) {
					succs = append(succs, inst.Target)
				} else {
					succs = append(succs, i+1)
				}
			} else {
				succs = append(succs, inst.Target, i+1)
			}
		case vm.OpDiv, vm.OpMod:
			if d := st[inst.Rs2]; d.kind == latConst && d.val == 0 {
				trap(i, "guard the divisor against zero",
					"division by zero whenever this instruction executes")
				halted = true
			} else {
				succs = append(succs, i+1)
			}
		case vm.OpLd, vm.OpSt:
			if base := st[inst.Rs1]; base.kind == latConst && base.val+inst.Imm < 0 {
				trap(i, "fix the base register or offset",
					"memory access at constant negative address %d always faults", base.val+inst.Imm)
				halted = true
			} else {
				succs = append(succs, i+1)
			}
		default:
			succs = append(succs, i+1)
		}

		st.set(0, constOf(0)) // keep r0 pinned for the transfer below
		cp.out[i] = transfer(st, inst)
		if halted {
			cp.fsuccs[i] = succs[:0]
			continue
		}
		cp.fsuccs[i] = succs
		for _, s := range succs {
			flow(i, s)
		}
	}
	return cp
}

// transfer applies one instruction to the abstract register file,
// mirroring vm.Machine.Run's concrete semantics exactly (shift masking,
// arithmetic right shift, r0 writes discarded).
func transfer(st regState, in vm.Inst) regState {
	bin := func(f func(a, b int64) latval) {
		a, b := st[in.Rs1], st[in.Rs2]
		if a.kind == latConst && b.kind == latConst {
			st.set(in.Rd, f(a.val, b.val))
		} else {
			st.set(in.Rd, varying)
		}
	}
	immOp := func(f func(a int64) latval) {
		if a := st[in.Rs1]; a.kind == latConst {
			st.set(in.Rd, f(a.val))
		} else {
			st.set(in.Rd, varying)
		}
	}
	switch in.Op {
	case vm.OpLi:
		st.set(in.Rd, constOf(in.Imm))
	case vm.OpMov:
		st.set(in.Rd, st[in.Rs1])
	case vm.OpAdd:
		bin(func(a, b int64) latval { return constOf(a + b) })
	case vm.OpSub:
		bin(func(a, b int64) latval { return constOf(a - b) })
	case vm.OpMul:
		bin(func(a, b int64) latval { return constOf(a * b) })
	case vm.OpDiv:
		bin(func(a, b int64) latval {
			if b == 0 || (a == math.MinInt64 && b == -1) {
				return varying // trap / overflow: diagnosed separately
			}
			return constOf(a / b)
		})
	case vm.OpMod:
		bin(func(a, b int64) latval {
			if b == 0 || (a == math.MinInt64 && b == -1) {
				return varying
			}
			return constOf(a % b)
		})
	case vm.OpAddi:
		immOp(func(a int64) latval { return constOf(a + in.Imm) })
	case vm.OpAnd:
		bin(func(a, b int64) latval { return constOf(a & b) })
	case vm.OpOr:
		bin(func(a, b int64) latval { return constOf(a | b) })
	case vm.OpXor:
		bin(func(a, b int64) latval { return constOf(a ^ b) })
	case vm.OpAndi:
		immOp(func(a int64) latval { return constOf(a & in.Imm) })
	case vm.OpShl:
		bin(func(a, b int64) latval { return constOf(a << uint(b&63)) })
	case vm.OpShr:
		bin(func(a, b int64) latval { return constOf(a >> uint(b&63)) })
	case vm.OpShli:
		immOp(func(a int64) latval { return constOf(a << uint(in.Imm&63)) })
	case vm.OpShri:
		immOp(func(a int64) latval { return constOf(a >> uint(in.Imm&63)) })
	case vm.OpLd:
		st.set(in.Rd, varying) // memory holds the input data set
	case vm.OpSet:
		bin(func(a, b int64) latval {
			if in.Cond.Eval(a, b) {
				return constOf(1)
			}
			return constOf(0)
		})
	case vm.OpCmov:
		switch pred := st[in.Rs1]; {
		case pred.kind == latConst && pred.val == 0:
			// keep old rd
		case pred.kind == latConst:
			st.set(in.Rd, st[in.Rs2])
		default:
			st.set(in.Rd, merge(st[in.Rd], st[in.Rs2]))
		}
	}
	return st
}

// isuccs returns the unpruned instruction-level successor list, used by
// the backward liveness pass (over-approximating control flow
// over-approximates liveness, which is the sound direction for
// dead-store reports).
func isuccs(p *vm.Program, callReturns []int, i int) []int {
	n := len(p.Insts)
	in := p.Insts[i]
	var out []int
	add := func(t int) {
		if t >= 0 && t < n {
			out = append(out, t)
		}
	}
	switch in.Op {
	case vm.OpHalt:
	case vm.OpJmp, vm.OpCall:
		add(in.Target)
	case vm.OpRet:
		for _, r := range callReturns {
			add(r)
		}
	case vm.OpBr:
		add(in.Target)
		add(i + 1)
	default:
		add(i + 1)
	}
	return out
}
