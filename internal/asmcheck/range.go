package asmcheck

import (
	"fmt"
	"math"

	"twodprof/internal/vm"
)

// Value-range (interval) analysis refining SCCP: every register at
// every reached point carries a conservative [lo,hi] bound. Where SCCP
// can only say "varying", the intervals often still decide a branch —
// `andi r1, r1, 1` bounds r1 to [0,1] regardless of the input, so
// `blt r1, r2` against r2 >= 2 is taken on every execution even though
// r1 carries input data. Such branches classify input-range-constant.
//
// The analysis flows over the same feasible edge set as SCCP and taint,
// refines intervals along branch edges (the taken arm of `blt r1, r2`
// knows r1 < r2), and widens growing bounds to ±∞ after a fixed number
// of changes per program point so loops terminate.

// interval is an inclusive signed range. The full interval is
// [math.MinInt64, math.MaxInt64].
type interval struct{ lo, hi int64 }

var fullRange = interval{math.MinInt64, math.MaxInt64}

func single(v int64) interval { return interval{v, v} }

func (iv interval) isFull() bool   { return iv.lo == math.MinInt64 && iv.hi == math.MaxInt64 }
func (iv interval) isSingle() bool { return iv.lo == iv.hi }

func (iv interval) String() string {
	switch {
	case iv.isFull():
		return "[-inf,+inf]"
	case iv.isSingle():
		return fmt.Sprintf("[%d]", iv.lo)
	default:
		lo, hi := "-inf", "+inf"
		if iv.lo != math.MinInt64 {
			lo = fmt.Sprintf("%d", iv.lo)
		}
		if iv.hi != math.MaxInt64 {
			hi = fmt.Sprintf("%d", iv.hi)
		}
		return fmt.Sprintf("[%s,%s]", lo, hi)
	}
}

// hull is the smallest interval covering both.
func hull(a, b interval) interval {
	if b.lo < a.lo {
		a.lo = b.lo
	}
	if b.hi > a.hi {
		a.hi = b.hi
	}
	return a
}

// addSat adds with saturation to the interval extremes on overflow.
func addSat(a, b int64) int64 {
	s := a + b
	if b > 0 && s < a {
		return math.MaxInt64
	}
	if b < 0 && s > a {
		return math.MinInt64
	}
	return s
}

// addIv adds two intervals, going full on overflow of either endpoint.
func addIv(a, b interval) interval {
	lo, hi := addSat(a.lo, b.lo), addSat(a.hi, b.hi)
	if lo > hi { // saturation crossed over
		return fullRange
	}
	return interval{lo, hi}
}

func negIv(a interval) interval {
	if a.lo == math.MinInt64 {
		return fullRange
	}
	return interval{-a.hi, -a.lo}
}

// mulOv multiplies, reporting overflow.
func mulOv(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if a == math.MinInt64 || b == math.MinInt64 {
		// Any multiplier but 1 overflows, and the quotient check below
		// would itself overflow on MinInt64 / -1. Bail conservatively.
		return 0, false
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// rangeState is the abstract register file of intervals at one point.
type rangeState [vm.NumRegs]interval

func (s *rangeState) set(rd uint8, iv interval) {
	if rd != 0 {
		s[rd] = iv
	}
}

// widenLimit caps how many times one (instruction, register) slot may
// change before its growing bound is widened to the matching infinity.
const widenLimit = 8

// ranges is the completed interval analysis.
type ranges struct {
	in      []rangeState
	visited []bool
}

// analyzeRanges runs the interval fixpoint over the feasible graph.
func analyzeRanges(p *vm.Program, cp *propagation) *ranges {
	n := len(p.Insts)
	ra := &ranges{
		in:      make([]rangeState, n),
		visited: make([]bool, n),
	}
	out := make([]rangeState, n)
	bumps := make([][vm.NumRegs]uint8, n)

	var work []int
	inWork := make([]bool, n)
	push := func(i int) {
		if i >= 0 && i < n && !inWork[i] {
			inWork[i] = true
			work = append(work, i)
		}
	}
	// Entry: the machine zeroes the register file.
	for r := range ra.in[0] {
		ra.in[0][r] = single(0)
	}
	ra.visited[0] = true
	push(0)

	flow := func(from, to int, st rangeState) {
		if to < 0 || to >= n {
			return
		}
		if !ra.visited[to] {
			ra.visited[to] = true
			ra.in[to] = st
			ra.in[to][0] = single(0)
			push(to)
			return
		}
		changed := false
		for r := 1; r < vm.NumRegs; r++ {
			h := hull(ra.in[to][r], st[r])
			if h == ra.in[to][r] {
				continue
			}
			// Widening: after widenLimit changes at this slot, send the
			// still-growing bound straight to its infinity so loop
			// counters cannot ratchet the fixpoint forever.
			if bumps[to][r] >= widenLimit {
				if h.lo < ra.in[to][r].lo {
					h.lo = math.MinInt64
				}
				if h.hi > ra.in[to][r].hi {
					h.hi = math.MaxInt64
				}
			} else {
				bumps[to][r]++
			}
			ra.in[to][r] = h
			changed = true
		}
		if changed {
			push(to)
		}
	}

	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[i] = false

		inst := p.Insts[i]
		out[i] = rangeTransfer(ra.in[i], inst)
		for _, s := range cp.fsuccs[i] {
			st := out[i]
			if inst.Op == vm.OpBr && inst.Target != i+1 && len(cp.fsuccs[i]) >= 2 {
				refined, feasible := refineEdge(st, inst, s == inst.Target)
				if !feasible {
					continue // the intervals prove this arm dead
				}
				st = refined
			}
			flow(i, s, st)
		}
	}
	return ra
}

// decide checks whether the intervals at branch i force one direction.
func (ra *ranges) decide(i int, in vm.Inst) (taken, ok bool, why string) {
	if !ra.visited[i] {
		return false, false, ""
	}
	a, b := ra.in[i][in.Rs1], ra.in[i][in.Rs2]
	t, f := compareIv(in.Cond, a, b)
	switch {
	case t:
		taken, ok = true, true
	case f:
		taken, ok = false, true
	default:
		return false, false, ""
	}
	why = fmt.Sprintf("ranges decide it: r%d in %s, r%d in %s", in.Rs1, a, in.Rs2, b)
	return taken, ok, why
}

// compareIv reports whether cond is provably always true or always
// false for all a in ia, b in ib.
func compareIv(cond vm.Cond, a, b interval) (alwaysTrue, alwaysFalse bool) {
	switch cond {
	case vm.CondEQ:
		return a.isSingle() && b.isSingle() && a.lo == b.lo,
			a.hi < b.lo || b.hi < a.lo
	case vm.CondNE:
		f, t := compareIv(vm.CondEQ, a, b)
		return t, f
	case vm.CondLT:
		return a.hi < b.lo, a.lo >= b.hi
	case vm.CondLE:
		return a.hi <= b.lo, a.lo > b.hi
	case vm.CondGT:
		return a.lo > b.hi, a.hi <= b.lo
	case vm.CondGE:
		return a.lo >= b.hi, a.hi < b.lo
	}
	return false, false
}

// refineEdge narrows the branch operands along one outgoing edge using
// the condition (or its negation). A provably empty result means the
// edge cannot be taken under the intervals.
func refineEdge(st rangeState, in vm.Inst, taken bool) (rangeState, bool) {
	a, b := st[in.Rs1], st[in.Rs2]
	cond := in.Cond
	if !taken {
		cond = negateCond(cond)
	}
	switch cond {
	case vm.CondEQ:
		m := interval{max64(a.lo, b.lo), min64(a.hi, b.hi)}
		a, b = m, m
	case vm.CondNE:
		// Only singleton exclusion at the endpoints is expressible.
		if b.isSingle() {
			a = shaveEndpoint(a, b.lo)
		}
		if a.isSingle() {
			b = shaveEndpoint(b, a.lo)
		}
	case vm.CondLT: // a < b
		if b.hi != math.MinInt64 {
			a.hi = min64(a.hi, addSat(b.hi, -1))
		}
		if a.lo != math.MaxInt64 {
			b.lo = max64(b.lo, addSat(a.lo, 1))
		}
	case vm.CondLE: // a <= b
		a.hi = min64(a.hi, b.hi)
		b.lo = max64(b.lo, a.lo)
	case vm.CondGT: // a > b
		a.lo = max64(a.lo, addSat(b.lo, 1))
		b.hi = min64(b.hi, addSat(a.hi, -1))
	case vm.CondGE: // a >= b
		a.lo = max64(a.lo, b.lo)
		b.hi = min64(b.hi, a.hi)
	}
	if a.lo > a.hi || b.lo > b.hi {
		return st, false
	}
	// With identical operand registers the two constraints must be
	// intersected, not applied independently.
	if in.Rs1 == in.Rs2 {
		m := interval{max64(a.lo, b.lo), min64(a.hi, b.hi)}
		if m.lo > m.hi {
			return st, false
		}
		a, b = m, m
	}
	st.set(in.Rs1, a)
	st.set(in.Rs2, b)
	return st, true
}

func negateCond(c vm.Cond) vm.Cond {
	switch c {
	case vm.CondEQ:
		return vm.CondNE
	case vm.CondNE:
		return vm.CondEQ
	case vm.CondLT:
		return vm.CondGE
	case vm.CondLE:
		return vm.CondGT
	case vm.CondGT:
		return vm.CondLE
	default: // CondGE
		return vm.CondLT
	}
}

// shaveEndpoint removes v from iv when v sits exactly on an endpoint
// (interior holes are not representable).
func shaveEndpoint(iv interval, v int64) interval {
	if iv.isSingle() {
		return iv // handled by feasibility elsewhere; cannot shave to empty here
	}
	if iv.lo == v {
		iv.lo = addSat(v, 1)
	} else if iv.hi == v {
		iv.hi = addSat(v, -1)
	}
	return iv
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// rangeTransfer applies one instruction to the interval register file,
// conservatively over vm.Machine.Run's concrete semantics.
func rangeTransfer(st rangeState, in vm.Inst) rangeState {
	a, b := st[in.Rs1], st[in.Rs2]
	switch in.Op {
	case vm.OpLi:
		st.set(in.Rd, single(in.Imm))
	case vm.OpMov:
		st.set(in.Rd, a)
	case vm.OpAdd:
		st.set(in.Rd, addIv(a, b))
	case vm.OpSub:
		st.set(in.Rd, addIv(a, negIv(b)))
	case vm.OpAddi:
		st.set(in.Rd, addIv(a, single(in.Imm)))
	case vm.OpMul:
		st.set(in.Rd, mulIv(a, b))
	case vm.OpDiv:
		st.set(in.Rd, divIv(a, b))
	case vm.OpMod:
		st.set(in.Rd, modIv(a, b))
	case vm.OpAnd:
		st.set(in.Rd, andIv(a, b))
	case vm.OpAndi:
		st.set(in.Rd, andIv(a, single(in.Imm)))
	case vm.OpOr, vm.OpXor:
		st.set(in.Rd, orXorIv(a, b))
	case vm.OpShl:
		st.set(in.Rd, shlIv(a, b))
	case vm.OpShli:
		st.set(in.Rd, shlIv(a, single(in.Imm&63)))
	case vm.OpShr:
		st.set(in.Rd, shrIv(a, b))
	case vm.OpShri:
		st.set(in.Rd, shrIv(a, single(in.Imm&63)))
	case vm.OpLd:
		st.set(in.Rd, fullRange) // memory holds the input data set
	case vm.OpSet:
		t, f := compareIv(in.Cond, a, b)
		switch {
		case t:
			st.set(in.Rd, single(1))
		case f:
			st.set(in.Rd, single(0))
		default:
			st.set(in.Rd, interval{0, 1})
		}
	case vm.OpCmov:
		// Predicate provably zero keeps rd; provably nonzero moves rs2;
		// otherwise either may happen.
		pt, pf := compareIv(vm.CondNE, a, single(0))
		switch {
		case pf:
			// keep old rd
		case pt:
			st.set(in.Rd, b)
		default:
			st.set(in.Rd, hull(st[in.Rd], b))
		}
	}
	return st
}

func mulIv(a, b interval) interval {
	if a.isFull() || b.isFull() {
		return fullRange
	}
	lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
	for _, x := range [2]int64{a.lo, a.hi} {
		for _, y := range [2]int64{b.lo, b.hi} {
			p, ok := mulOv(x, y)
			if !ok {
				return fullRange
			}
			lo, hi = min64(lo, p), max64(hi, p)
		}
	}
	return interval{lo, hi}
}

func divIv(a, b interval) interval {
	// Only divisor ranges excluding zero are safe to bound; anything
	// else may trap at runtime, and surviving executions are not
	// usefully constrained here.
	if b.lo <= 0 && b.hi >= 0 {
		return fullRange
	}
	if a.lo == math.MinInt64 && b.lo <= -1 && b.hi >= -1 {
		return fullRange // MinInt64 / -1 overflows
	}
	lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
	for _, x := range [2]int64{a.lo, a.hi} {
		for _, y := range [2]int64{b.lo, b.hi} {
			q := x / y
			lo, hi = min64(lo, q), max64(hi, q)
		}
	}
	// Division truncates toward zero, so quotients of interior points
	// never escape the endpoint quotients' hull for a fixed-sign
	// divisor range.
	return interval{lo, hi}
}

func modIv(a, b interval) interval {
	if b.lo <= 0 && b.hi >= 0 {
		return fullRange // possible trap
	}
	// |a % b| < |b|, with the sign of a (Go truncated division).
	m := max64(abs64(b.lo), abs64(b.hi))
	if m == math.MinInt64 || m < 0 {
		return fullRange
	}
	out := interval{-(m - 1), m - 1}
	if a.lo >= 0 {
		out.lo = 0
	}
	if a.hi <= 0 {
		out.hi = 0
	}
	return out
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v // MinInt64 stays negative; callers check
	}
	return v
}

func andIv(a, b interval) interval {
	// x & y for y in [0,m] lands in [0,m]; likewise symmetric. Negative
	// masks preserve non-negative x: result in [0, a.hi].
	switch {
	case b.lo >= 0:
		hi := b.hi
		if a.lo >= 0 {
			hi = min64(hi, a.hi)
		}
		return interval{0, hi}
	case a.lo >= 0:
		return interval{0, a.hi}
	default:
		return fullRange
	}
}

func orXorIv(a, b interval) interval {
	// For non-negative operands both x|y and x^y are bounded by
	// x + y (no carry can exceed the sum) and non-negative.
	if a.lo >= 0 && b.lo >= 0 {
		return interval{0, addSat(a.hi, b.hi)}
	}
	return fullRange
}

func shlIv(a, s interval) interval {
	if s.isSingle() {
		sh := uint(s.lo & 63)
		if sh == 0 {
			return a
		}
		// Monotone (multiply by 2^sh) while no endpoint overflows.
		if a.lo != math.MinInt64 && a.hi != math.MaxInt64 &&
			a.hi <= math.MaxInt64>>sh && a.lo >= math.MinInt64>>sh {
			return interval{a.lo << sh, a.hi << sh}
		}
	}
	return fullRange
}

func shrIv(a, s interval) interval {
	if s.isSingle() {
		sh := uint(s.lo & 63)
		return interval{a.lo >> sh, a.hi >> sh} // arithmetic shift is monotone
	}
	// Unknown shift in [0,63]: the result lies between the value itself
	// and its sign (0 or -1).
	lo := a.lo
	if lo > 0 {
		lo = 0
	}
	hi := a.hi
	if hi < 0 {
		hi = -1
	}
	return interval{lo, hi}
}
