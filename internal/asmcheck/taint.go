package asmcheck

import (
	"sort"

	"twodprof/internal/cfg"
	"twodprof/internal/vm"
)

// Input-dependence taint analysis. The initial data memory is the input
// source: every word is tainted at entry, every register is not (the
// machine zeroes the file). Taint then propagates forward over the same
// feasible interprocedural edge set SCCP computed — call edges into the
// callee, ret edges to every call-return point (context join), constant
// branch conditions pruning the dead arm.
//
// Three channels carry taint:
//
//   - data flow: a definition is tainted when any register it reads is
//     tainted at that point. SCCP overrides this at every use — a
//     register holding an SCCP-proven constant has the same value on
//     every execution under every input, so it is untainted no matter
//     how it was computed.
//   - memory: the abstract memory state is the set of constant
//     addresses proven to hold untainted values; everything outside the
//     set is tainted (so the entry state is the empty set). A store of
//     an untainted value through an SCCP-constant address adds the fact
//     (strong update: the word-addressed cell is fully overwritten); a
//     tainted store to a constant address removes it; a store through a
//     tainted address destroys the whole set — any cell may now hold
//     input-derived data. The join is set intersection.
//   - control: a definition executing under an input-dependent branch
//     is tainted even when it only moves constants (the classic
//     implicit flow: `if (input) r = 1 else r = 0`). Control dependence
//     is computed from instruction-level postdominators over the
//     feasible graph (cfg.SolveDominators on the transposed edges with
//     the exit instructions as roots).
//
// The whole analysis is a nested fixpoint: the data/memory pass runs to
// fixpoint under a control-taint assignment, which is then recomputed
// from the branch conditions it produced; taint only ever grows, so the
// outer loop terminates.

// memFacts is the set of constant addresses proven untainted.
type memFacts map[int64]struct{}

func (m memFacts) clone() memFacts {
	out := make(memFacts, len(m))
	for a := range m {
		out[a] = struct{}{}
	}
	return out
}

// intersectInto removes from m every fact absent from other, reporting
// whether m changed.
func (m memFacts) intersectInto(other memFacts) bool {
	changed := false
	for a := range m {
		if _, ok := other[a]; !ok {
			delete(m, a)
			changed = true
		}
	}
	return changed
}

// taintState is the abstract state at one program point.
type taintState struct {
	regs vm.RegSet // registers carrying input-derived values
	mem  memFacts  // addresses proven untainted (complement tainted)
}

// taint is the completed analysis.
type taint struct {
	cp      *propagation
	in      []taintState
	visited []bool
	// ctrl marks instructions control-dependent on at least one
	// input-dependent branch: whether (and how often) they execute
	// varies with the input even when their operands do not.
	ctrl []bool
	// cdep[i] lists the conditional branches instruction i is
	// control-dependent on, over the feasible interprocedural graph.
	cdep [][]int
}

// taintedReg reports whether register r carries input-derived data at
// entry to instruction i. SCCP constants are clean by construction:
// a proven-constant register holds the same value on every execution.
func (ta *taint) taintedReg(i int, r uint8) bool {
	if ta.cp.in[i][r].kind == latConst {
		return false
	}
	return ta.in[i].regs.Has(r)
}

// CondTaint describes how a conditional branch relates to the input.
type condTaint struct {
	data bool  // an operand register carries input-derived data
	ctrl bool  // the branch executes under input-dependent control
	reg  uint8 // a tainted operand register, when data is set
}

// condTaint classifies the condition of the branch at instruction i.
func (ta *taint) condTaint(i int, in vm.Inst) condTaint {
	ct := condTaint{ctrl: ta.ctrl[i]}
	switch {
	case ta.taintedReg(i, in.Rs1):
		ct.data, ct.reg = true, in.Rs1
	case ta.taintedReg(i, in.Rs2):
		ct.data, ct.reg = true, in.Rs2
	}
	return ct
}

// analyzeTaint runs the taint analysis to fixpoint over the feasible
// graph cp computed.
func analyzeTaint(p *vm.Program, cp *propagation) *taint {
	n := len(p.Insts)
	ta := &taint{
		cp:   cp,
		ctrl: make([]bool, n),
		cdep: controlDeps(p, cp),
	}
	// Outer fixpoint over the control-taint assignment: rerun the
	// data/memory pass until no branch condition's taint changes the
	// control-dependence picture. Taint only grows with more control
	// taint, so this terminates after at most one outer round per
	// conditional branch.
	for {
		ta.runData(p, cp)
		changed := false
		for i := 0; i < n; i++ {
			if ta.ctrl[i] {
				continue
			}
			for _, b := range ta.cdep[i] {
				ct := ta.condTaint(b, p.Insts[b])
				if ct.data || ct.ctrl {
					ta.ctrl[i] = true
					changed = true
					break
				}
			}
		}
		if !changed {
			return ta
		}
	}
}

// runData is the inner forward fixpoint: register and memory taint
// under the current control-taint assignment.
func (ta *taint) runData(p *vm.Program, cp *propagation) {
	n := len(p.Insts)
	ta.in = make([]taintState, n)
	ta.visited = make([]bool, n)
	out := make([]taintState, n)

	var work []int
	inWork := make([]bool, n)
	push := func(i int) {
		if i >= 0 && i < n && !inWork[i] {
			inWork[i] = true
			work = append(work, i)
		}
	}
	// Entry: registers clean, no memory facts (all of memory is input).
	ta.in[0] = taintState{mem: memFacts{}}
	ta.visited[0] = true
	push(0)

	flow := func(from, to int) {
		if to < 0 || to >= n {
			return
		}
		src := out[from]
		if !ta.visited[to] {
			ta.visited[to] = true
			ta.in[to] = taintState{regs: src.regs, mem: src.mem.clone()}
			push(to)
			return
		}
		dst := &ta.in[to]
		changed := false
		if more := dst.regs | src.regs; more != dst.regs {
			dst.regs = more
			changed = true
		}
		if dst.mem.intersectInto(src.mem) {
			changed = true
		}
		if changed {
			push(to)
		}
	}

	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[i] = false

		out[i] = ta.transferTaint(p, i)
		for _, s := range cp.fsuccs[i] {
			flow(i, s)
		}
	}
}

// transferTaint applies instruction i to its in-state.
func (ta *taint) transferTaint(p *vm.Program, i int) taintState {
	in := p.Insts[i]
	st := taintState{regs: ta.in[i].regs, mem: ta.in[i].mem.clone()}
	setReg := func(r uint8, tainted bool) {
		if r == 0 {
			return // r0 stays hardwired zero
		}
		if tainted {
			st.regs |= 1 << r
		} else {
			st.regs &^= 1 << r
		}
	}
	useTaint := func() bool {
		for _, r := range in.Uses().Regs() {
			if ta.taintedReg(i, r) {
				return true
			}
		}
		return false
	}
	ctrl := ta.ctrl[i]

	switch in.Op {
	case vm.OpLd:
		fromMem := true
		if base := ta.cp.in[i][in.Rs1]; base.kind == latConst {
			if _, clean := st.mem[base.val+in.Imm]; clean {
				fromMem = false
			}
		}
		setReg(in.Rd, ta.taintedReg(i, in.Rs1) || fromMem || ctrl)
	case vm.OpSt:
		val := ta.taintedReg(i, in.Rs2) || ctrl
		if base := ta.cp.in[i][in.Rs1]; base.kind == latConst {
			addr := base.val + in.Imm
			if val {
				delete(st.mem, addr)
			} else {
				st.mem[addr] = struct{}{}
			}
		} else if ta.taintedReg(i, in.Rs1) || val {
			// A store through a tainted address (or of a tainted value
			// to an unknown address) may land on any cell:
			// conservatively taint all of memory.
			st.mem = memFacts{}
		}
		// An untainted value through an untainted (merely non-constant)
		// address hits the same deterministic cell on every input, and
		// overwrites it with a clean value: existing facts survive.
	case vm.OpBr, vm.OpJmp, vm.OpCall, vm.OpRet, vm.OpHalt, vm.OpNop, vm.OpOut:
		// no register definition, memory untouched
	default:
		// All register-defining ops, including OpSet (taint of either
		// comparison operand taints the boolean) and OpCmov (Uses()
		// includes Rd: a partial write merges the old value in).
		if d, ok := in.Def(); ok {
			setReg(d, useTaint() || ctrl)
		}
	}
	return st
}

// controlDeps computes, per instruction, the conditional branches it is
// control-dependent on, using instruction-level postdominators over the
// feasible interprocedural graph. Exit instructions (halt, proven
// traps, ret with no call sites) are the postdominator roots. Where
// postdominance is undefined — regions that cannot reach any exit, i.e.
// statically infinite loops — everything feasibly reachable from the
// branch is conservatively marked dependent on it.
func controlDeps(p *vm.Program, cp *propagation) [][]int {
	n := len(p.Insts)
	cdep := make([][]int, n)

	// Transposed feasible graph and its exit roots.
	preds := make([][]int, n)
	var exits []int
	for i := 0; i < n; i++ {
		if !cp.reached[i] {
			continue
		}
		if len(cp.fsuccs[i]) == 0 {
			exits = append(exits, i)
		}
		for _, s := range cp.fsuccs[i] {
			if s >= 0 && s < n {
				preds[s] = append(preds[s], i)
			}
		}
	}
	ipdom := cfg.SolveDominators(n, func(i int) []int { return preds[i] }, exits)

	add := func(j, b int) {
		for _, have := range cdep[j] {
			if have == b {
				return
			}
		}
		cdep[j] = append(cdep[j], b)
	}
	// markReachable is the conservative fallback for branches whose
	// postdominator is undefined: every instruction the branch can
	// feasibly reach may execute (or not) depending on it.
	markReachable := func(b int) {
		seen := make([]bool, n)
		stack := []int{b}
		seen[b] = true
		for len(stack) > 0 {
			j := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			add(j, b)
			for _, s := range cp.fsuccs[j] {
				if s >= 0 && s < n && !seen[s] {
					seen[s] = true
					stack = append(stack, s)
				}
			}
		}
	}

	for b := 0; b < n; b++ {
		in := p.Insts[b]
		// Only branches with two distinct feasible arms steer control.
		if in.Op != vm.OpBr || !cp.reached[b] || len(cp.fsuccs[b]) < 2 || in.Target == b+1 {
			continue
		}
		if ipdom[b] < 0 {
			markReachable(b)
			continue
		}
		for _, s := range cp.fsuccs[b] {
			// Walk s's postdominator chain up to b's immediate
			// postdominator: everything strictly below it executes only
			// when this arm is chosen.
			escaped := false
			for j := s; j != ipdom[b]; {
				if j < 0 || (ipdom[j] == j && j != ipdom[b]) {
					escaped = true
					break
				}
				add(j, b)
				j = ipdom[j]
			}
			if escaped {
				markReachable(b)
				break
			}
		}
	}
	for _, deps := range cdep {
		sort.Ints(deps)
	}
	return cdep
}
