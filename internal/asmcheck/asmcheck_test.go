package asmcheck_test

import (
	"reflect"
	"strings"
	"testing"

	"twodprof/internal/asmcheck"
	"twodprof/internal/progs"
	"twodprof/internal/trace"
	"twodprof/internal/vm"
)

func mustAssemble(t *testing.T, src string) *vm.Program {
	t.Helper()
	p, err := vm.Assemble("test.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func run(t *testing.T, src string) *asmcheck.Result {
	t.Helper()
	res, err := asmcheck.Run(mustAssemble(t, src))
	if err != nil {
		t.Fatalf("asmcheck.Run: %v", err)
	}
	return res
}

// hasDiag reports whether some diagnostic from the given analysis at
// the given instruction (-2 = any instruction) contains the substring.
func hasDiag(res *asmcheck.Result, analysis asmcheck.Analysis, inst int, substr string) bool {
	for _, d := range res.Diags {
		if d.Analysis == analysis && (inst == -2 || d.Inst == inst) && strings.Contains(d.Msg, substr) {
			return true
		}
	}
	return false
}

func diagList(res *asmcheck.Result) string {
	var b strings.Builder
	for _, d := range res.Diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}

// --- structural ---

func TestStructuralBadTarget(t *testing.T) {
	prog := &vm.Program{Name: "bad", Insts: []vm.Inst{
		{Op: vm.OpJmp, Target: 99},
	}}
	res, err := asmcheck.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !hasDiag(res, asmcheck.AnalysisStructural, 0, "target 99 outside program") {
		t.Errorf("missing bad-target diagnostic:\n%s", diagList(res))
	}
	if res.MaxSeverity() != asmcheck.SevError {
		t.Errorf("MaxSeverity = %v, want error", res.MaxSeverity())
	}
}

func TestStructuralErrorsYieldUnknownVerdicts(t *testing.T) {
	prog := &vm.Program{Name: "badbr", Insts: []vm.Inst{
		{Op: vm.OpBr, Cond: vm.CondEQ, Rs1: 1, Rs2: 2, Target: 50},
		{Op: vm.OpHalt},
	}}
	res, err := asmcheck.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Verdict(0)
	if !ok || v.Class != asmcheck.ClassUnknown {
		t.Errorf("branch after structural error: verdict %+v ok=%v, want ClassUnknown", v, ok)
	}
}

func TestStructuralFallOffEnd(t *testing.T) {
	res := run(t, "li r1, 1\n")
	if !hasDiag(res, asmcheck.AnalysisStructural, 0, "run past the last instruction") {
		t.Errorf("missing fall-off-end diagnostic:\n%s", diagList(res))
	}
}

func TestStructuralRetUnderflow(t *testing.T) {
	res := run(t, "ret\n")
	if !hasDiag(res, asmcheck.AnalysisStructural, 0, "empty call stack") {
		t.Errorf("missing ret-underflow diagnostic:\n%s", diagList(res))
	}
	// A ret only reachable through call is fine.
	res = run(t, "call fn\nhalt\nfn: ret\n")
	if len(res.Diags) != 0 {
		t.Errorf("call/ret pairing flagged:\n%s", diagList(res))
	}
}

func TestEmptyProgram(t *testing.T) {
	res, err := asmcheck.Run(&vm.Program{Name: "empty"})
	if err != nil {
		t.Fatal(err)
	}
	if res.CountAtLeast(asmcheck.SevError) != 1 {
		t.Errorf("empty program: %d errors, want 1:\n%s",
			res.CountAtLeast(asmcheck.SevError), diagList(res))
	}
}

// --- constprop ---

func TestConstPropDivByZero(t *testing.T) {
	res := run(t, "div r1, r2, r0\nhalt\n")
	if !hasDiag(res, asmcheck.AnalysisConstProp, 0, "division by zero") {
		t.Errorf("missing div-by-zero diagnostic:\n%s", diagList(res))
	}
}

func TestConstPropNegativeAddress(t *testing.T) {
	res := run(t, "li r1, -8\nld r2, [r1+0]\nhalt\n")
	if !hasDiag(res, asmcheck.AnalysisConstProp, 1, "negative address") {
		t.Errorf("missing negative-address diagnostic:\n%s", diagList(res))
	}
}

// --- deadcode ---

func TestDeadStore(t *testing.T) {
	res := run(t, "li r1, 5\nli r1, 6\nout r1\nhalt\n")
	if !hasDiag(res, asmcheck.AnalysisDeadCode, 0, "never read") {
		t.Errorf("missing dead-store diagnostic:\n%s", diagList(res))
	}
}

func TestWriteToR0(t *testing.T) {
	res := run(t, "li r0, 1\nhalt\n")
	if !hasDiag(res, asmcheck.AnalysisDeadCode, 0, "hardwired to zero") {
		t.Errorf("missing r0-write diagnostic:\n%s", diagList(res))
	}
}

func TestReadBeforeWrite(t *testing.T) {
	res := run(t, "out r3\nhalt\n")
	if !hasDiag(res, asmcheck.AnalysisDeadCode, 0, "r3 is read before any write") {
		t.Errorf("missing read-before-write diagnostic:\n%s", diagList(res))
	}
}

func TestUnreachableRun(t *testing.T) {
	res := run(t, "jmp end\nout r1\nout r2\nend: halt\n")
	if !hasDiag(res, asmcheck.AnalysisDeadCode, 1, "unreachable: instructions #1..#2") {
		t.Errorf("missing unreachable diagnostic:\n%s", diagList(res))
	}
}

// SCCP prunes the arm of a constant branch, so the skipped arm is
// unreachable even though the naive CFG reaches it.
func TestConstBranchPrunesArm(t *testing.T) {
	res := run(t, "li r1, 1\nbgt r1, r0, yes\nout r0\nyes: halt\n")
	if !hasDiag(res, asmcheck.AnalysisDeadCode, 2, "unreachable") {
		t.Errorf("pruned arm not reported unreachable:\n%s", diagList(res))
	}
}

// --- classify ---

func verdictOf(t *testing.T, res *asmcheck.Result, inst int) asmcheck.BranchVerdict {
	t.Helper()
	v, ok := res.Verdict(inst)
	if !ok {
		t.Fatalf("no verdict for branch #%d (have %+v)", inst, res.Branches)
	}
	return v
}

func TestClassifyConstTaken(t *testing.T) {
	res := run(t, "li r1, 1\nbgt r1, r0, yes\nout r0\nyes: halt\n")
	if v := verdictOf(t, res, 1); v.Class != asmcheck.ClassConstTaken {
		t.Errorf("verdict = %s, want const-taken (%s)", v, v.Why)
	}
	if !asmcheck.ClassConstTaken.IsConst() {
		t.Error("ClassConstTaken.IsConst() = false")
	}
}

func TestClassifyConstNotTaken(t *testing.T) {
	res := run(t, "li r1, 5\nbeq r1, r0, never\nhalt\nnever: out r1\nhalt\n")
	if v := verdictOf(t, res, 1); v.Class != asmcheck.ClassConstNotTaken {
		t.Errorf("verdict = %s, want const-not-taken (%s)", v, v.Why)
	}
}

func TestClassifyLoopBackedge(t *testing.T) {
	res := run(t, "li r1, 3\nloop: addi r1, r1, -1\nbgt r1, r0, loop\nhalt\n")
	v := verdictOf(t, res, 2)
	if v.Class != asmcheck.ClassLoopBackedge || v.Trip != 3 {
		t.Errorf("verdict = %s trip=%d, want loop-backedge trip=3 (%s)", v.Class, v.Trip, v.Why)
	}
	if got := v.String(); got != "loop-backedge(trip=3)" {
		t.Errorf("String() = %q", got)
	}
	if len(res.Diags) != 0 {
		t.Errorf("clean counting loop produced diagnostics:\n%s", diagList(res))
	}
}

// An up-counting loop with a constant bound on the other operand.
func TestClassifyLoopBackedgeUpCounter(t *testing.T) {
	res := run(t, "li r2, 10\nloop: addi r1, r1, 2\nout r1\nblt r1, r2, loop\nhalt\n")
	v := verdictOf(t, res, 3)
	if v.Class != asmcheck.ClassLoopBackedge || v.Trip != 5 {
		t.Errorf("verdict = %s trip=%d, want loop-backedge trip=5 (%s)", v.Class, v.Trip, v.Why)
	}
}

// A loop inside a called function: the call-aware CFG roots must find
// it even though the callee is unreachable along intraprocedural edges.
func TestClassifyLoopBackedgeInCallee(t *testing.T) {
	res := run(t, "call fn\nhalt\nfn: li r1, 4\nloop: addi r1, r1, -1\nbgt r1, r0, loop\nret\n")
	v := verdictOf(t, res, 4)
	if v.Class != asmcheck.ClassLoopBackedge || v.Trip != 4 {
		t.Errorf("verdict = %s trip=%d, want loop-backedge trip=4 (%s)", v.Class, v.Trip, v.Why)
	}
}

func TestClassifyInputDependent(t *testing.T) {
	res := run(t, "ld r1, [r0+0]\nbeq r1, r0, done\nout r1\ndone: halt\n")
	if v := verdictOf(t, res, 1); v.Class != asmcheck.ClassInputDependent {
		t.Errorf("verdict = %s, want input-dependent (%s)", v, v.Why)
	}
}

// A loop whose bound comes from memory has no provable trip count.
func TestClassifyInputBoundLoopStaysInputDependent(t *testing.T) {
	res := run(t, "ld r2, [r0+0]\nloop: addi r1, r1, 1\nblt r1, r2, loop\nhalt\n")
	if v := verdictOf(t, res, 2); v.Class != asmcheck.ClassInputDependent {
		t.Errorf("verdict = %s, want input-dependent (%s)", v, v.Why)
	}
}

func TestClassifyUnreachable(t *testing.T) {
	res := run(t, "jmp end\ndead: beq r1, r1, dead\nend: halt\n")
	if v := verdictOf(t, res, 1); v.Class != asmcheck.ClassUnreachable {
		t.Errorf("verdict = %s, want unreachable (%s)", v, v.Why)
	}
}

// --- API surface ---

func TestAnalysisSubset(t *testing.T) {
	prog := mustAssemble(t, "div r1, r2, r0\nhalt\n")
	res, err := asmcheck.Run(prog, asmcheck.AnalysisStructural)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) != 0 || len(res.Branches) != 0 {
		t.Errorf("structural-only run produced constprop output: %d diags %d verdicts",
			len(res.Diags), len(res.Branches))
	}
	if _, err := asmcheck.Run(prog, asmcheck.Analysis("bogus")); err == nil {
		t.Error("unknown analysis accepted")
	}
}

func TestStaticClasses(t *testing.T) {
	k, _ := progs.KernelByName("typesum")
	classes := asmcheck.StaticClasses(k.Prog)
	if got := classes[trace.PC(21)]; got != "loop-backedge(trip=4)" {
		t.Errorf("typesum #21 = %q, want loop-backedge(trip=4); map: %v", got, classes)
	}
	if len(classes) != len(vm.StaticBranches(k.Prog)) {
		t.Errorf("classified %d of %d branches", len(classes), len(vm.StaticBranches(k.Prog)))
	}
}

func TestFormatMentionsVerdicts(t *testing.T) {
	res := run(t, "li r1, 3\nloop: addi r1, r1, -1\nbgt r1, r0, loop\nhalt\n")
	out := res.Format()
	for _, want := range []string{"4 instructions", "1 conditional branches", "loop-backedge(trip=3)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}

// --- fuzz ---

// FuzzAsmcheck: the pipeline never panics on any accepted program, and
// its diagnostics and verdicts are deterministic (two runs agree).
func FuzzAsmcheck(f *testing.F) {
	seeds := []string{
		"halt\n",
		"li r1, 3\nloop: addi r1, r1, -1\nbgt r1, r0, loop\nhalt\n",
		"call fn\nhalt\nfn: li r1, 4\nloop: addi r1, r1, -1\nbgt r1, r0, loop\nret\n",
		"div r1, r2, r0\nhalt\n",
		"li r1, -8\nld r2, [r1+0]\nhalt\n",
		"jmp end\nout r1\nend: halt\n",
		"ret\n",
		"li r1, 1\n",
		"ld r1, [r0+0]\nbeq r1, r0, done\nout r1\ndone: halt\n",
		"a: jmp a\n",
	}
	for _, name := range progs.KernelNames() {
		k, _ := progs.KernelByName(name)
		seeds = append(seeds, vm.Disassemble(k.Prog))
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := vm.Assemble("fuzz", src)
		if err != nil {
			return
		}
		r1, err := asmcheck.Run(prog)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		r2, err := asmcheck.Run(prog)
		if err != nil {
			t.Fatalf("Run (second): %v", err)
		}
		if !reflect.DeepEqual(r1.Diags, r2.Diags) {
			t.Fatalf("diagnostics unstable:\n%s\nvs\n%s", diagList(r1), diagList(r2))
		}
		if !reflect.DeepEqual(r1.Branches, r2.Branches) {
			t.Fatalf("verdicts unstable: %+v vs %+v", r1.Branches, r2.Branches)
		}
		for _, i := range vm.StaticBranches(prog) {
			if _, ok := r1.Verdict(i); !ok {
				t.Fatalf("branch #%d has no verdict", i)
			}
		}
	})
}
