package asmcheck

import (
	"fmt"

	"twodprof/internal/vm"
)

// checkDead reports unreachable instructions (including arms dominated
// by constant branches, which SCCP prunes), dead register stores, and
// registers read before their first write.
func checkDead(p *vm.Program, cp *propagation) []Diag {
	var diags []Diag
	n := len(p.Insts)
	add := func(inst int, sev Severity, hint, format string, args ...interface{}) {
		diags = append(diags, Diag{
			Analysis: AnalysisDeadCode, Severity: sev,
			Inst: inst, Line: p.Line(inst),
			Msg: fmt.Sprintf(format, args...), Hint: hint,
		})
	}

	// Unreachable runs: consecutive instructions no feasible execution
	// reaches.
	for i := 0; i < n; {
		if cp.reached[i] {
			i++
			continue
		}
		j := i
		for j < n && !cp.reached[j] {
			j++
		}
		add(i, SevWarning, "delete the instructions or fix the control flow that bypasses them",
			"unreachable: instructions #%d..#%d never execute", i, j-1)
		i = j
	}

	var callReturns []int
	for i, in := range p.Insts {
		if in.Op == vm.OpCall {
			callReturns = append(callReturns, i+1)
		}
	}

	// Backward liveness over the unpruned graph.
	liveIn := make([]vm.RegSet, n)
	liveOut := make([]vm.RegSet, n)
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			var out vm.RegSet
			for _, s := range isuccs(p, callReturns, i) {
				out |= liveIn[s]
			}
			in := p.Insts[i].Uses() | out
			if d, ok := p.Insts[i].Def(); ok {
				in = out&^(1<<d) | p.Insts[i].Uses()
			}
			if out != liveOut[i] || in != liveIn[i] {
				liveOut[i], liveIn[i] = out, in
				changed = true
			}
		}
	}
	for i, in := range p.Insts {
		if !cp.reached[i] {
			continue // already covered by the unreachable diagnostic
		}
		if in.WritesR0() {
			add(i, SevWarning, "write to a non-zero register",
				"destination r0 is hardwired to zero; the written value is discarded")
			continue
		}
		if d, ok := in.Def(); ok && !liveOut[i].Has(d) {
			add(i, SevWarning, "delete the instruction or use the value",
				"dead store: the value written to r%d is never read", d)
		}
	}

	// Forward may-be-unwritten analysis over the feasible edges:
	// reading a register before any write consumes the implicit initial
	// zero, which is at best obscure and usually a missing
	// initialisation.
	all := vm.RegSet(0)
	for r := uint8(1); r < vm.NumRegs; r++ {
		all |= 1 << r
	}
	unwritten := make([]vm.RegSet, n)
	seen := make([]bool, n)
	unwritten[0], seen[0] = all, true
	work := []int{0}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		out := unwritten[i]
		if d, ok := p.Insts[i].Def(); ok {
			out &^= 1 << d
		}
		for _, s := range cp.fsuccs[i] {
			m := unwritten[s] | out
			if !seen[s] || m != unwritten[s] {
				unwritten[s] = m
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	for i, in := range p.Insts {
		if !cp.reached[i] {
			continue
		}
		if bad := in.Uses() & unwritten[i]; bad != 0 {
			for _, r := range bad.Regs() {
				if r == 0 {
					continue
				}
				add(i, SevWarning, fmt.Sprintf("initialise r%d (li r%d, 0) before this point", r, r),
					"r%d is read before any write on some path (it reads the initial zero)", r)
			}
		}
	}
	return diags
}
