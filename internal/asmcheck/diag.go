package asmcheck

import (
	"fmt"
	"sort"
)

// Severity ranks diagnostics.
type Severity int

// Severity levels, least to most severe.
const (
	// SevInfo marks observations that are not defects (e.g. a register
	// read that intentionally consumes the initial zero).
	SevInfo Severity = iota
	// SevWarning marks likely defects that do not stop execution (dead
	// stores, unreachable code).
	SevWarning
	// SevError marks conditions that make the program trap or leave the
	// instruction range at run time.
	SevError
)

// String returns the lower-case level name.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// MarshalText implements encoding.TextMarshaler for -json output.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// Diag is one diagnostic: which analysis produced it, where, what is
// wrong, and how to fix it.
type Diag struct {
	Analysis Analysis `json:"analysis"`
	Severity Severity `json:"severity"`
	// Inst is the instruction index the diagnostic anchors to (-1 for
	// whole-program diagnostics).
	Inst int `json:"inst"`
	// Line is the 1-based source line of Inst, 0 when unknown.
	Line int `json:"line,omitempty"`
	// Msg states the defect.
	Msg string `json:"msg"`
	// Hint suggests a fix, when one is evident.
	Hint string `json:"hint,omitempty"`
}

// String renders the diagnostic in a compiler-style one-line form.
func (d Diag) String() string {
	loc := fmt.Sprintf("#%d", d.Inst)
	if d.Inst < 0 {
		loc = "program"
	}
	if d.Line > 0 {
		loc += fmt.Sprintf(" (line %d)", d.Line)
	}
	s := fmt.Sprintf("%s: %s: %s: %s", d.Severity, d.Analysis, loc, d.Msg)
	if d.Hint != "" {
		s += " [fix: " + d.Hint + "]"
	}
	return s
}

// sortDiags orders diagnostics by instruction index, then severity
// (most severe first), then message, for stable output.
func sortDiags(ds []Diag) {
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].Inst != ds[j].Inst {
			return ds[i].Inst < ds[j].Inst
		}
		if ds[i].Severity != ds[j].Severity {
			return ds[i].Severity > ds[j].Severity
		}
		return ds[i].Msg < ds[j].Msg
	})
}
