package asmcheck

import (
	"fmt"

	"twodprof/internal/vm"
)

// maxTrackedDepth caps the abstract call-stack depth the structural
// walk distinguishes; deeper states are merged (recursion beyond the
// cap can no longer prove an underflow, which is the conservative
// direction — no false positives).
const maxTrackedDepth = 64

// checkStructural verifies the program's control-flow skeleton:
// branch/jump/call targets inside the instruction range, no execution
// path running past the last instruction, and no ret reachable with an
// empty call stack. It explores the abstract state space
// (pc, call-depth) exactly, with depth saturated at maxTrackedDepth.
func checkStructural(p *vm.Program) []Diag {
	var diags []Diag
	n := len(p.Insts)
	add := func(inst int, sev Severity, hint, format string, args ...interface{}) {
		diags = append(diags, Diag{
			Analysis: AnalysisStructural, Severity: sev,
			Inst: inst, Line: p.Line(inst),
			Msg: fmt.Sprintf(format, args...), Hint: hint,
		})
	}

	// Pass 1: target ranges. A label may legally sit one past the last
	// instruction, so assembled programs can still carry Target == n.
	badTarget := make([]bool, n)
	var callReturns []int
	for i, in := range p.Insts {
		switch in.Op {
		case vm.OpBr, vm.OpJmp, vm.OpCall:
			if in.Target < 0 || in.Target >= n {
				badTarget[i] = true
				add(i, SevError,
					"point the target label at an instruction",
					"%s target %d outside program of %d instructions", in.Op, in.Target, n)
			}
			if in.Op == vm.OpCall {
				callReturns = append(callReturns, i+1)
			}
		}
	}

	// Pass 2: reachable (pc, depth) states. ret transfers to every
	// call-return point (the abstract stack tracks depth only), which
	// over-approximates real return targets.
	type state struct{ pc, depth int }
	seen := map[state]bool{}
	var stack []state
	push := func(pc, depth int) {
		s := state{pc, depth}
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	push(0, 0)
	fellOff := map[int]bool{} // pred instruction -> already diagnosed
	underflow := map[int]bool{}
	edge := func(from, to, depth int) {
		if to == n {
			if !fellOff[from] {
				fellOff[from] = true
				add(from, SevError,
					"end the path with halt, ret or a jump",
					"execution can run past the last instruction")
			}
			return
		}
		if to >= 0 && to < n {
			push(to, depth)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		in := p.Insts[s.pc]
		switch in.Op {
		case vm.OpHalt:
		case vm.OpJmp:
			if !badTarget[s.pc] {
				edge(s.pc, in.Target, s.depth)
			}
		case vm.OpBr:
			if !badTarget[s.pc] {
				edge(s.pc, in.Target, s.depth)
			}
			edge(s.pc, s.pc+1, s.depth)
		case vm.OpCall:
			if !badTarget[s.pc] {
				d := s.depth + 1
				if d > maxTrackedDepth {
					d = maxTrackedDepth
				}
				edge(s.pc, in.Target, d)
			}
		case vm.OpRet:
			if s.depth == 0 {
				if !underflow[s.pc] {
					underflow[s.pc] = true
					add(s.pc, SevError,
						"only reach ret through a call",
						"ret can execute with an empty call stack")
				}
				continue
			}
			for _, r := range callReturns {
				edge(s.pc, r, s.depth-1)
			}
		default:
			edge(s.pc, s.pc+1, s.depth)
		}
	}
	return diags
}
