// Package asmcheck is a dataflow static-analysis framework over VM
// programs. It runs a pipeline of analyses on the control-flow graph —
// structural verification, sparse conditional constant propagation,
// liveness-based dead-store and unreachable-code detection,
// input-dependence taint tracking, value-range (interval) analysis,
// and static branch classification — and reports diagnostics plus a
// per-branch verdict.
//
// The branch verdicts feed 2D-profiling as a static prefilter: a branch
// proven `const-taken` or `const-not-taken` resolves the same way on
// every execution under *any* input set, so it can never be
// input-dependent; a profiler that flags one has a bug (see DESIGN.md
// §3d and §3i for the soundness arguments). The taint and range passes
// widen this to a full input-dependence lattice: `input-range-constant`
// (an operand carries input, but the proven [lo,hi] intervals decide
// the comparison) and `input-independent` (computed from constants and
// internal state only) are input-invariant too, while
// `input-dependent` marks the branches 2D-profiling is allowed to
// flag.
package asmcheck

import (
	"fmt"
	"sort"

	"twodprof/internal/trace"
	"twodprof/internal/vm"
)

// Analysis names one pass of the pipeline.
type Analysis string

// The analyses, in pipeline order. Later passes depend on earlier
// ones: constprop requires a structurally valid program, deadcode and
// classify consume constprop's reachability and lattice values.
const (
	// AnalysisStructural verifies branch/jump/call targets are in
	// range, execution cannot fall off the end of the program, and ret
	// never runs with an empty call stack.
	AnalysisStructural Analysis = "structural"
	// AnalysisConstProp runs reaching-definitions-based sparse
	// conditional constant propagation over the registers, pruning
	// infeasible branch edges, and flags guaranteed traps (division by
	// zero, always-negative memory addresses).
	AnalysisConstProp Analysis = "constprop"
	// AnalysisDeadCode reports SCCP-unreachable instructions (including
	// arms dominated by constant branches) and dead register stores.
	AnalysisDeadCode Analysis = "deadcode"
	// AnalysisTaint tracks input-dependence: initial data memory is the
	// taint source, and taint flows through registers, word-addressed
	// memory, predication, call/ret context joins, and control
	// dependence (see taint.go). It emits no diagnostics of its own;
	// classify consumes it.
	AnalysisTaint Analysis = "taint"
	// AnalysisRange tracks a conservative [lo,hi] interval per register
	// (refining SCCP through arithmetic and masking), so branches whose
	// comparison is decided by the ranges are proven statically biased
	// even when an operand carries input. No diagnostics; classify
	// consumes it.
	AnalysisRange Analysis = "range"
	// AnalysisClassify assigns every conditional branch a verdict:
	// const-taken, const-not-taken, loop-backedge(trip=K),
	// input-range-constant(dir), input-dependent, input-independent,
	// or unreachable.
	AnalysisClassify Analysis = "classify"
)

// AllAnalyses returns the full pipeline in order.
func AllAnalyses() []Analysis {
	return []Analysis{AnalysisStructural, AnalysisConstProp, AnalysisDeadCode,
		AnalysisTaint, AnalysisRange, AnalysisClassify}
}

// Result is the outcome of running the pipeline over one program.
type Result struct {
	Prog *vm.Program `json:"-"`
	// Name echoes the program name for JSON output.
	Name string `json:"name"`
	// Diags holds every diagnostic, ordered by instruction index.
	Diags []Diag `json:"diags"`
	// Branches holds one verdict per conditional branch, in program
	// order (present only when AnalysisClassify ran).
	Branches []BranchVerdict `json:"branches,omitempty"`

	classOf map[int]*BranchVerdict
}

// Run executes the requested analyses (all of them when none are
// given) over prog and returns the combined result. Dependencies are
// resolved automatically: asking for classify alone still runs
// structural and constprop. When structural verification fails with
// errors, the dataflow passes are skipped — their results would be
// meaningless over a broken instruction stream — and every branch is
// classified ClassUnknown.
func Run(prog *vm.Program, analyses ...Analysis) (*Result, error) {
	if len(analyses) == 0 {
		analyses = AllAnalyses()
	}
	want := map[Analysis]bool{}
	for _, a := range analyses {
		switch a {
		case AnalysisStructural, AnalysisConstProp, AnalysisDeadCode,
			AnalysisTaint, AnalysisRange, AnalysisClassify:
			want[a] = true
		default:
			return nil, fmt.Errorf("asmcheck: unknown analysis %q", a)
		}
	}
	// Dependency closure.
	if want[AnalysisClassify] {
		want[AnalysisTaint] = true
		want[AnalysisRange] = true
	}
	if want[AnalysisDeadCode] || want[AnalysisTaint] || want[AnalysisRange] {
		want[AnalysisConstProp] = true
	}
	if want[AnalysisConstProp] {
		want[AnalysisStructural] = true
	}

	res := &Result{Prog: prog, Name: prog.Name}
	if len(prog.Insts) == 0 {
		res.Diags = append(res.Diags, Diag{
			Analysis: AnalysisStructural, Severity: SevError, Inst: -1,
			Msg:  "empty program: execution faults at pc=0",
			Hint: "add at least a halt instruction",
		})
		res.finish(want[AnalysisClassify])
		return res, nil
	}

	broken := false
	if want[AnalysisStructural] {
		ds := checkStructural(prog)
		res.Diags = append(res.Diags, ds...)
		for _, d := range ds {
			if d.Severity == SevError {
				broken = true
			}
		}
	}
	if broken || !want[AnalysisConstProp] {
		res.finish(want[AnalysisClassify])
		return res, nil
	}

	cp := propagate(prog)
	res.Diags = append(res.Diags, cp.diags...)

	if want[AnalysisDeadCode] {
		res.Diags = append(res.Diags, checkDead(prog, cp)...)
	}
	if want[AnalysisClassify] {
		ta := analyzeTaint(prog, cp)
		ra := analyzeRanges(prog, cp)
		res.Branches = classify(prog, cp, ta, ra)
	} else if want[AnalysisTaint] {
		analyzeTaint(prog, cp)
	} else if want[AnalysisRange] {
		analyzeRanges(prog, cp)
	}
	res.finish(false)
	return res, nil
}

// finish sorts diagnostics and verdicts and indexes the latter; when
// unknownBranches is set it fills the verdict table with ClassUnknown
// entries so every branch is always classified. Verdicts are ordered
// by instruction index, then class, so JSON and text output are
// deterministic regardless of how the table was produced.
func (r *Result) finish(unknownBranches bool) {
	if unknownBranches {
		for _, i := range vm.StaticBranches(r.Prog) {
			r.Branches = append(r.Branches, BranchVerdict{
				Inst: i, Line: r.Prog.Line(i), Class: ClassUnknown,
				Why: "structural errors prevented dataflow analysis",
			})
		}
	}
	sortDiags(r.Diags)
	sort.Slice(r.Branches, func(i, j int) bool {
		if r.Branches[i].Inst != r.Branches[j].Inst {
			return r.Branches[i].Inst < r.Branches[j].Inst
		}
		return r.Branches[i].Class < r.Branches[j].Class
	})
	r.classOf = make(map[int]*BranchVerdict, len(r.Branches))
	for i := range r.Branches {
		r.classOf[r.Branches[i].Inst] = &r.Branches[i]
	}
}

// Verdict returns the classification of the conditional branch at
// instruction index pc.
func (r *Result) Verdict(pc int) (BranchVerdict, bool) {
	v, ok := r.classOf[pc]
	if !ok {
		return BranchVerdict{}, false
	}
	return *v, true
}

// MaxSeverity returns the highest severity among the diagnostics, or
// (SevInfo-1) when there are none.
func (r *Result) MaxSeverity() Severity {
	max := Severity(-1)
	for _, d := range r.Diags {
		if d.Severity > max {
			max = d.Severity
		}
	}
	return max
}

// CountAtLeast returns the number of diagnostics at or above the given
// severity.
func (r *Result) CountAtLeast(min Severity) int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity >= min {
			n++
		}
	}
	return n
}

// StaticClasses runs the full pipeline and returns the branch-PC to
// verdict-string map profiler reports attach as their static prefilter
// column (core.Report.AnnotateStatic).
func StaticClasses(prog *vm.Program) map[trace.PC]string {
	res, err := Run(prog)
	if err != nil {
		return nil
	}
	out := make(map[trace.PC]string, len(res.Branches))
	for _, v := range res.Branches {
		out[trace.PC(v.Inst)] = v.String()
	}
	return out
}
