package asmcheck

import (
	"fmt"
	"strings"

	"twodprof/internal/vm"
)

// Format renders the result for humans: a one-line header, the
// diagnostics in compiler style, then the branch-verdict table. Both
// cmd/asmcheck and `vmasm check` print this form so their output stays
// consistent.
func (r *Result) Format() string {
	var b strings.Builder
	name := r.Name
	if name == "" {
		name = "(program)"
	}
	fmt.Fprintf(&b, "%s: %d instructions, %d conditional branches, %d diagnostics\n",
		name, len(r.Prog.Insts), len(vm.StaticBranches(r.Prog)), len(r.Diags))
	for _, d := range r.Diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	if len(r.Branches) > 0 {
		fmt.Fprintf(&b, "  branch verdicts:\n")
		for _, v := range r.Branches {
			loc := fmt.Sprintf("#%d", v.Inst)
			if v.Line > 0 {
				loc += fmt.Sprintf(" (line %d)", v.Line)
			}
			fmt.Fprintf(&b, "    %-14s %-24s %s\n", loc, v.String(), v.Why)
		}
	}
	return b.String()
}
