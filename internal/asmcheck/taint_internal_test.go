package asmcheck

import (
	"reflect"
	"testing"

	"twodprof/internal/progs"
	"twodprof/internal/vm"
)

func assemble(t *testing.T, src string) *vm.Program {
	t.Helper()
	p, err := vm.Assemble("test.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

// TestTaintRecursiveCallFixpoint: the taint fixpoint terminates on
// direct recursion and still finds both flows — the recursion variable
// is data-tainted at the callee's guard, and the accumulator bumped
// under that guard is tainted at the caller's branch. (The full
// pipeline reports unknown here: the depth-only abstract stack of the
// structural pass cannot prove the recursive ret balanced, so this
// exercises the dataflow layer directly.)
func TestTaintRecursiveCallFixpoint(t *testing.T) {
	prog := assemble(t, `
		ld r1, [r0+0]
		call f
		beq r2, r0, done
		out r2
	done:	halt
	f:	beq r1, r0, base
		addi r1, r1, -1
		addi r2, r2, 1
		call f
		ret
	base:	ret
	`)
	cp := propagate(prog)
	ta := analyzeTaint(prog, cp)

	if ct := ta.condTaint(5, prog.Insts[5]); !ct.data {
		t.Errorf("callee guard (#5): condTaint = %+v, want data taint on r1", ct)
	}
	if ct := ta.condTaint(2, prog.Insts[2]); !ct.data && !ct.ctrl {
		t.Errorf("caller branch (#2): condTaint = %+v, want taint via the recursive accumulator", ct)
	}

	// The fixpoint is deterministic: a second run from scratch lands on
	// the identical state.
	tb := analyzeTaint(prog, propagate(prog))
	if !reflect.DeepEqual(ta.in, tb.in) || !reflect.DeepEqual(ta.ctrl, tb.ctrl) {
		t.Error("taint states differ across runs")
	}
}

// FuzzTaint: on arbitrary assemblable programs the taint and range
// fixpoints terminate without crashing, and the interval analysis never
// contradicts SCCP — wherever SCCP proves a register constant at a
// reached program point, the computed interval contains that constant.
func FuzzTaint(f *testing.F) {
	seeds := []string{
		"halt\n",
		"li r1, 7\nst [r0+5], r1\nld r2, [r0+5]\nbeq r2, r0, done\nout r2\ndone: halt\n",
		"ld r1, [r0+0]\nandi r1, r1, 1\nli r2, 5\nblt r1, r2, small\nout r1\nsmall: halt\n",
		"ld r1, [r0+0]\nbeq r1, r0, e\nli r2, 1\njmp j\ne: li r2, 2\nj: beq r2, r0, n\nhalt\nn: out r0\nhalt\n",
		"ld r1, [r0+0]\nsetgt r2, r1, r0\nli r3, 7\nli r4, 9\ncmov r3, r2, r4\nbeq r3, r4, q\nout r3\nq: halt\n",
		"ld r2, [r0+0]\nst [r2+0], r0\nld r3, [r0+5]\nbeq r3, r0, d\nout r3\nd: halt\n",
		"ld r1, [r0+0]\ncall f\nbeq r2, r0, d\nout r2\nd: halt\nf: beq r1, r0, b\naddi r1, r1, -1\naddi r2, r2, 1\ncall f\nret\nb: ret\n",
		"ld r1, [r0+0]\ndiv r2, r1, r1\nmod r3, r2, r1\nbeq r3, r0, z\nout r3\nz: halt\n",
		"li r1, -9223372036854775808\nmul r2, r1, r1\nshli r3, r1, 63\nhalt\n",
		"a: jmp a\n",
	}
	for _, name := range progs.KernelNames() {
		k, _ := progs.KernelByName(name)
		seeds = append(seeds, vm.Disassemble(k.Prog))
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := vm.Assemble("fuzz", src)
		if err != nil {
			return
		}
		cp := propagate(prog)
		analyzeTaint(prog, cp)
		ra := analyzeRanges(prog, cp)
		for i := range prog.Insts {
			if !cp.reached[i] || !ra.visited[i] {
				continue
			}
			for r := 0; r < vm.NumRegs; r++ {
				lv := cp.in[i][uint8(r)]
				if lv.kind != latConst {
					continue
				}
				if iv := ra.in[i][r]; lv.val < iv.lo || lv.val > iv.hi {
					t.Fatalf("inst %d r%d: SCCP proves %d but range is [%d,%d]",
						i, r, lv.val, iv.lo, iv.hi)
				}
			}
		}
	})
}
