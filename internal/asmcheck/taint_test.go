package asmcheck_test

import (
	"sort"
	"testing"

	"twodprof/internal/asmcheck"
	"twodprof/internal/progs"
)

// TestClassifyInputIndependent: a value that round-trips through memory
// the program itself wrote stays clean, even though SCCP sees the load
// as varying. The branch on it is input-independent.
func TestClassifyInputIndependent(t *testing.T) {
	res := run(t, `
		li r1, 7
		st [r0+5], r1
		ld r2, [r0+5]
		beq r2, r0, done
		out r2
	done:	halt
	`)
	if v := verdictOf(t, res, 3); v.Class != asmcheck.ClassInputIndependent {
		t.Errorf("verdict = %s, want input-independent (%s)", v, v.Why)
	}
	if !asmcheck.ClassInputIndependent.InputInvariant() {
		t.Error("ClassInputIndependent.InputInvariant() = false")
	}
}

// TestClassifyRangeConstant: the operand is input-derived but masked
// into [0,1], so the comparison against 5 is decided by intervals alone.
func TestClassifyRangeConstant(t *testing.T) {
	res := run(t, `
		ld r1, [r0+0]
		andi r1, r1, 1
		li r2, 5
		blt r1, r2, small
		out r1
	small:	halt
	`)
	v := verdictOf(t, res, 3)
	if v.Class != asmcheck.ClassRangeConst {
		t.Fatalf("verdict = %s, want input-range-constant (%s)", v, v.Why)
	}
	if v.Dir != "taken" {
		t.Errorf("Dir = %q, want taken", v.Dir)
	}
	if !v.Class.InputInvariant() {
		t.Error("range-constant branch not InputInvariant")
	}
}

// TestClassifyImplicitFlow: a register assigned only constants, but
// under input-dependent control, is input-derived; the later branch on
// it must not be classified input-independent.
func TestClassifyImplicitFlow(t *testing.T) {
	res := run(t, `
		ld r1, [r0+0]
		beq r1, r0, else
		li r2, 1
		jmp join
	else:	li r2, 2
	join:	li r3, 1
		beq r2, r3, one
		halt
	one:	out r0
		halt
	`)
	for _, inst := range []int{1, 6} {
		if v := verdictOf(t, res, inst); v.Class != asmcheck.ClassInputDependent {
			t.Errorf("branch #%d: verdict = %s, want input-dependent (%s)", inst, v, v.Why)
		}
	}
}

// TestTaintPredicationChain: taint propagates through a set-then-cmov
// predication chain; the same chain seeded from a constant stays
// input-invariant.
func TestTaintPredicationChain(t *testing.T) {
	tainted := `
		ld r1, [r0+0]
		setgt r2, r1, r0
		li r3, 7
		li r4, 9
		cmov r3, r2, r4
		beq r3, r4, eq
		out r3
	eq:	halt
	`
	res := run(t, tainted)
	if v := verdictOf(t, res, 5); v.Class != asmcheck.ClassInputDependent {
		t.Errorf("tainted chain: verdict = %s, want input-dependent (%s)", v, v.Why)
	}

	clean := `
		li r1, 3
		setgt r2, r1, r0
		li r3, 7
		li r4, 9
		cmov r3, r2, r4
		beq r3, r4, eq
		out r3
	eq:	halt
	`
	res = run(t, clean)
	if v := verdictOf(t, res, 5); !v.Class.InputInvariant() {
		t.Errorf("constant chain: verdict = %s, want input-invariant (%s)", v, v.Why)
	}
}

// TestTaintStoreThroughTaintedAddress: a store whose address is
// input-derived may alias any word, so it must conservatively wipe
// every proven-clean memory fact.
func TestTaintStoreThroughTaintedAddress(t *testing.T) {
	res := run(t, `
		li r1, 7
		st [r0+5], r1
		ld r2, [r0+0]
		st [r2+0], r0
		ld r3, [r0+5]
		beq r3, r0, done
		out r3
	done:	halt
	`)
	if v := verdictOf(t, res, 5); v.Class != asmcheck.ClassInputDependent {
		t.Errorf("verdict = %s, want input-dependent (%s)", v, v.Why)
	}
}

// TestTaintStoreThroughCleanAddress: a store of a clean value through a
// clean (if unknown) address cannot introduce taint, so proven-clean
// facts survive it.
func TestTaintStoreThroughCleanAddress(t *testing.T) {
	res := run(t, `
		li r1, 7
		st [r0+5], r1
		ld r2, [r0+5]
		st [r2+0], r0
		ld r3, [r0+5]
		beq r3, r0, done
		out r3
	done:	halt
	`)
	if v := verdictOf(t, res, 5); v.Class != asmcheck.ClassInputIndependent {
		t.Errorf("verdict = %s, want input-independent (%s)", v, v.Why)
	}
}

// TestTaintDivModEdges: division and modulus by an input-derived value
// taint their result; a proven divide-by-zero halts the propagation and
// leaves the successor branch unreachable.
func TestTaintDivModEdges(t *testing.T) {
	for _, op := range []string{"div", "mod"} {
		res := run(t, `
		ld r1, [r0+0]
		`+op+` r2, r1, r1
		beq r2, r0, z
		out r2
	z:	halt
	`)
		if v := verdictOf(t, res, 2); v.Class != asmcheck.ClassInputDependent {
			t.Errorf("%s: verdict = %s, want input-dependent (%s)", op, v, v.Why)
		}
	}

	res := run(t, `
		li r1, 0
		div r2, r3, r1
		beq r2, r0, z
		out r2
	z:	halt
	`)
	if v := verdictOf(t, res, 2); v.Class != asmcheck.ClassUnreachable {
		t.Errorf("after proven trap: verdict = %s, want unreachable (%s)", v, v.Why)
	}
}

// TestVerdictOrderDeterministic: the verdict list every renderer
// (cmd/asmcheck, vmasm check -json, format.go) walks is sorted by
// instruction index, then class — on every embedded kernel.
func TestVerdictOrderDeterministic(t *testing.T) {
	for _, name := range progs.KernelNames() {
		k, _ := progs.KernelByName(name)
		res, err := asmcheck.Run(k.Prog)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sorted := sort.SliceIsSorted(res.Branches, func(i, j int) bool {
			a, b := res.Branches[i], res.Branches[j]
			if a.Inst != b.Inst {
				return a.Inst < b.Inst
			}
			return a.Class < b.Class
		})
		if !sorted {
			t.Errorf("%s: verdicts not sorted by (inst, class): %+v", name, res.Branches)
		}
	}
}
