// Package replay turns trace streams into 2D-profiling reports as fast
// as the stream format allows. It is the offline counterpart of
// internal/serve's ingest path.
//
// For a BTR1 stream (or any stream with Workers <= 1) the replay is the
// classic sequential pass. For a BTR2 stream the chunk framing unlocks
// two parallelism classes, chosen by metric:
//
//   - MetricBias has no predictor, so only the global slice clock is
//     sequential. Chunks decode fully in parallel, a cheap in-order
//     router assigns events to PC-sharded profilers (which do the real
//     per-event statistics work concurrently), and core.MergeReports
//     reassembles the exact sequential report.
//
//   - MetricAccuracy threads every event through one predictor whose
//     state depends on the full interleaved history, so the front-end
//     stays sequential; the pipeline still decodes chunks in parallel
//     ahead of it and feeds the profiler through the batched
//     (devirtualized) predictor path.
//
// Both paths are byte-identical to the sequential replay of the same
// events — see DESIGN.md §3c for the determinism argument.
package replay

import (
	"fmt"
	"io"
	"runtime"

	"twodprof/internal/bpred"
	"twodprof/internal/core"
	"twodprof/internal/trace"
)

// Options configure a replay run.
type Options struct {
	// Workers bounds the decode worker pool and, for MetricBias, the
	// number of PC-sharded profilers. <= 0 means GOMAXPROCS; 1 forces
	// the sequential path. BTR1 streams always replay sequentially —
	// their delta chain admits no decode parallelism.
	Workers int
	// Static optionally carries the asmcheck branch classification of
	// the program that produced the trace (asmcheck.StaticClasses);
	// when set, the report is annotated with the static prefilter
	// column. Traces carry no program identity, so this must come from
	// the caller; nil leaves the report byte-identical to earlier
	// versions.
	Static map[trace.PC]string
}

// Profile replays a trace stream (BTR1, BTR2, or gzip of either) into a
// fresh 2D-profiler and returns the finished report. The predictor name
// is validated in both metric modes, mirroring twodprof.Profile;
// MetricBias additionally accepts an empty name.
func Profile(r io.Reader, cfg core.Config, predictor string, opts Options) (*core.Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var pred bpred.Predictor
	if cfg.Metric == core.MetricAccuracy || predictor != "" {
		p, err := bpred.New(predictor)
		if err != nil {
			return nil, err
		}
		if cfg.Metric == core.MetricAccuracy {
			pred = p
		}
	}

	rd, err := trace.OpenReader(r)
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	annotate := func(rep *core.Report, err error) (*core.Report, error) {
		if err != nil {
			return nil, err
		}
		rep.AnnotateStatic(opts.Static)
		return rep, nil
	}

	b2, chunked := rd.(*trace.BTR2Reader)
	if !chunked || workers <= 1 {
		prof, err := core.NewProfiler(cfg, pred)
		if err != nil {
			return nil, err
		}
		if _, err := rd.Replay(prof); err != nil {
			return nil, err
		}
		return annotate(prof.Finish(), nil)
	}

	if cfg.Metric == core.MetricBias {
		return annotate(profileBiasParallel(b2, cfg, workers))
	}

	// Accuracy: parallel chunk decode ahead of a sequential batched
	// front-end. The profiler is a trace.BatchSink, so each reordered
	// chunk flows through the devirtualized predictor loop in one call.
	prof, err := core.NewProfiler(cfg, pred)
	if err != nil {
		return nil, err
	}
	if _, err := b2.ParallelReplay(workers, prof); err != nil {
		return nil, err
	}
	return annotate(prof.Finish(), nil)
}

// profileBiasParallel runs the bias-metric fan-out: parallel chunk
// decode, in-order routing, PC-sharded statistics workers, disjoint
// snapshot merge.
func profileBiasParallel(r *trace.BTR2Reader, cfg core.Config, workers int) (*core.Report, error) {
	router, err := newBiasRouter(cfg, workers)
	if err != nil {
		return nil, err
	}
	if _, err := r.ParallelReplay(workers, router); err != nil {
		router.abort()
		return nil, err
	}
	return router.finish()
}

// ensure interface satisfaction at compile time.
var _ trace.BatchSink = (*core.Profiler)(nil)

// errShards guards impossible shard configurations.
func errShards(n int) error {
	return fmt.Errorf("replay: invalid shard count %d", n)
}
