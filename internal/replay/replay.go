// Package replay turns trace streams into 2D-profiling reports as fast
// as the stream format allows. It is the offline counterpart of
// internal/serve's ingest path, and like it a thin adapter over the
// shared sharded-execution core in internal/engine.
//
// For a BTR1 stream (or any stream with Workers <= 1) the replay is the
// classic sequential pass. For a BTR2 stream the chunk framing lets the
// engine decode chunks across a parallel worker pool ahead of its
// sequential front-end; per-branch statistics fan out across PC-sharded
// profiler workers for both metrics. Every path is byte-identical to
// the sequential replay of the same events — see DESIGN.md §3b/§3e for
// the determinism argument.
package replay

import (
	"io"

	"twodprof/internal/core"
	"twodprof/internal/engine"
	"twodprof/internal/trace"
)

// Options configure a replay run.
type Options struct {
	// Workers bounds the decode worker pool and the number of PC-sharded
	// profilers. <= 0 means GOMAXPROCS; 1 forces the sequential path.
	// BTR1 streams always decode sequentially — their delta chain admits
	// no decode parallelism.
	Workers int
	// Static optionally carries the asmcheck branch classification of
	// the program that produced the trace (asmcheck.StaticClasses);
	// when set, the report is annotated with the static prefilter
	// column. Traces carry no program identity, so this must come from
	// the caller; nil leaves the report byte-identical to earlier
	// versions.
	Static map[trace.PC]string
}

// Profile replays a trace stream (BTR1, BTR2, or gzip of either) into
// the sharded profiling engine and returns the finished report. The
// predictor name is validated in both metric modes, mirroring
// twodprof.Profile; MetricBias additionally accepts an empty name.
func Profile(r io.Reader, cfg core.Config, predictor string, opts Options) (*core.Report, error) {
	return engine.ProfileStream(r, cfg, engine.Options{
		Workers:   opts.Workers,
		Predictor: predictor,
		Static:    opts.Static,
	})
}
