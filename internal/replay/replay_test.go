package replay

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"twodprof/internal/core"
	"twodprof/internal/synth"
	"twodprof/internal/trace"
)

// testEvents records one synthetic workload with a wide-ish static
// footprint, memoised across tests.
var (
	testEventsOnce sync.Once
	testEventsVal  []trace.Event
)

func testEvents(t testing.TB) []trace.Event {
	t.Helper()
	testEventsOnce.Do(func() {
		cfg := synth.DefaultPopulationConfig("replay-test", 0xabcd)
		cfg.NumSites = 800
		cfg.DynTarget = 300_000
		wl := synth.NewPopulation(cfg).Workload("train")
		rec := trace.NewRecorder(int(cfg.DynTarget))
		wl.Run(rec)
		testEventsVal = rec.Events
	})
	return testEventsVal
}

// testConfig uses a slice size small enough for a few dozen slices per
// run, and deliberately not a power of two so "unaligned" chunk sizes
// exist.
func testConfig(metric core.Metric) core.Config {
	cfg := core.DefaultConfig()
	cfg.SliceSize = 5000
	cfg.ExecThreshold = 10
	cfg.Metric = metric
	return cfg
}

func encodeBTR1(t testing.TB, events []trace.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		w.Branch(e.PC, e.Taken)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func encodeBTR2(t testing.TB, events []trace.Event, opts trace.BTR2Options) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewBTR2Writer(&buf, opts)
	if err != nil {
		t.Fatal(err)
	}
	w.BranchBatch(events)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func reportJSON(t testing.TB, rep *core.Report) []byte {
	t.Helper()
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestParallelMatchesSequential is the pipeline's core determinism
// claim: parallel BTR2 replay is byte-identical (as JSON) to the
// sequential BTR1 replay of the same events, for both metrics, at
// several worker counts, with chunk sizes both aligned and not aligned
// to the slice size.
func TestParallelMatchesSequential(t *testing.T) {
	events := testEvents(t)
	btr1 := encodeBTR1(t, events)

	for _, metric := range []core.Metric{core.MetricBias, core.MetricAccuracy} {
		cfg := testConfig(metric)
		ref, err := Profile(bytes.NewReader(btr1), cfg, "gshare-4KB", Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := reportJSON(t, ref)

		// 5000 divides 10000 (chunk boundary = slice boundary); 4093 is
		// prime, so every slice boundary lands mid-chunk somewhere.
		for _, chunk := range []int{10000, 4093} {
			for _, compress := range []bool{false, true} {
				if compress && chunk == 10000 {
					continue // one compressed column is enough
				}
				btr2 := encodeBTR2(t, events, trace.BTR2Options{ChunkEvents: chunk, Compress: compress})
				for _, workers := range []int{1, 4, 8} {
					name := fmt.Sprintf("%s/chunk=%d/z=%v/workers=%d", metric, chunk, compress, workers)
					rep, err := Profile(bytes.NewReader(btr2), cfg, "gshare-4KB", Options{Workers: workers})
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if got := reportJSON(t, rep); !bytes.Equal(got, want) {
						t.Errorf("%s: report differs from sequential BTR1 replay", name)
					}
				}
			}
		}
	}
}

// TestBTR1SequentialFallback checks a BTR1 stream profiles correctly
// even when parallelism was requested (no chunk framing to exploit).
func TestBTR1SequentialFallback(t *testing.T) {
	events := testEvents(t)
	btr1 := encodeBTR1(t, events)
	cfg := testConfig(core.MetricAccuracy)
	ref, err := Profile(bytes.NewReader(btr1), cfg, "gshare-4KB", Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Profile(bytes.NewReader(btr1), cfg, "gshare-4KB", Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportJSON(t, ref), reportJSON(t, rep)) {
		t.Fatal("BTR1 report depends on the Workers option")
	}
}

// TestPredictorValidated mirrors the profile2d contract: a bad
// predictor name fails loudly in both metric modes.
func TestPredictorValidated(t *testing.T) {
	events := testEvents(t)[:1000]
	btr2 := encodeBTR2(t, events, trace.BTR2Options{})
	for _, metric := range []core.Metric{core.MetricBias, core.MetricAccuracy} {
		cfg := testConfig(metric)
		if _, err := Profile(bytes.NewReader(btr2), cfg, "no-such-predictor", Options{}); err == nil {
			t.Errorf("metric %s accepted a bad predictor name", metric)
		}
	}
	// Bias with an empty name is edge profiling: fine.
	cfg := testConfig(core.MetricBias)
	if _, err := Profile(bytes.NewReader(btr2), cfg, "", Options{}); err != nil {
		t.Errorf("bias with empty predictor: %v", err)
	}
}

// TestTruncatedStreamFails checks a stream cut mid-chunk surfaces an
// error rather than a silently short report.
func TestTruncatedStreamFails(t *testing.T) {
	events := testEvents(t)[:50000]
	btr2 := encodeBTR2(t, events, trace.BTR2Options{ChunkEvents: 4096})
	cut := btr2[:len(btr2)/2]
	if _, err := Profile(bytes.NewReader(cut), testConfig(core.MetricBias), "", Options{Workers: 4}); err == nil {
		t.Fatal("mid-chunk truncation produced a report with no error")
	}
}

// TestParallelReplayHammer drives the full pipeline concurrently; it is
// the -race workout for the decode pool, the reorder stage and the
// bias fan-out.
func TestParallelReplayHammer(t *testing.T) {
	events := testEvents(t)
	if testing.Short() {
		events = events[:60_000]
	}
	btr2 := encodeBTR2(t, events, trace.BTR2Options{ChunkEvents: 4093})
	var wants [2][]byte
	for i, metric := range []core.Metric{core.MetricBias, core.MetricAccuracy} {
		ref, err := Profile(bytes.NewReader(btr2), testConfig(metric), "gshare-4KB", Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = reportJSON(t, ref)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for g := 0; g < 4; g++ {
		for i, metric := range []core.Metric{core.MetricBias, core.MetricAccuracy} {
			wg.Add(1)
			go func(g, i int, metric core.Metric) {
				defer wg.Done()
				workers := 2 + g%3*3 // 2, 5, 8, 2
				rep, err := Profile(bytes.NewReader(btr2), testConfig(metric), "gshare-4KB", Options{Workers: workers})
				if err != nil {
					errc <- fmt.Errorf("hammer %s workers=%d: %w", metric, workers, err)
					return
				}
				if !bytes.Equal(reportJSON(t, rep), wants[i]) {
					errc <- fmt.Errorf("hammer %s workers=%d: report differs", metric, workers)
				}
			}(g, i, metric)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
