package replay

import (
	"sync"

	"twodprof/internal/core"
	"twodprof/internal/trace"
)

// PC-sharded bias replay.
//
// The bias metric consults no predictor, so per-branch statistics
// partition disjointly by PC (DESIGN.md §3b) and only the slice clock —
// a running count of retired branches — couples events globally. The
// router below is that clock plus a hash: it walks the in-order decoded
// stream, appends each event to its owning shard's pending batch, and
// broadcasts a boundary marker to every shard when a slice completes.
// Shard workers fold their partition's statistics concurrently; their
// channels preserve order, so each shard applies the boundary after
// exactly the events that belong to the slice. This mirrors
// internal/serve's ingest fan-out, whose merged output is proven
// byte-identical to the offline single-profiler pass.

// biasBatch is the unit of work handed to a shard worker.
type biasBatch struct {
	events   []trace.Event
	endSlice bool
}

// biasShard owns one PC partition's profiler.
type biasShard struct {
	ch   chan biasBatch
	done chan struct{}
	pool *sync.Pool
	prof *core.Profiler
}

func (s *biasShard) run() {
	defer close(s.done)
	for b := range s.ch {
		s.prof.OutcomeBatch(b.events, nil)
		if b.endSlice {
			s.prof.EndSlice()
		}
		if cap(b.events) > 0 {
			s.pool.Put(b.events[:0])
		}
	}
}

// routerBatchSize is the events buffered per shard before a batch is
// handed off; slice boundaries flush early regardless.
const routerBatchSize = 512

// routerQueueDepth bounds each shard's channel; a full queue blocks the
// router, which backpressures the decode pipeline.
const routerQueueDepth = 64

// biasRouter is the sequential routing stage. It implements
// trace.BatchSink, so the parallel decode pipeline delivers whole
// chunks into it.
type biasRouter struct {
	cfg       core.Config
	shards    []*biasShard
	pending   [][]trace.Event
	sliceExec int64
	pool      sync.Pool
	closed    bool
}

func newBiasRouter(cfg core.Config, shards int) (*biasRouter, error) {
	if shards <= 0 {
		return nil, errShards(shards)
	}
	r := &biasRouter{
		cfg:     cfg,
		shards:  make([]*biasShard, shards),
		pending: make([][]trace.Event, shards),
	}
	for i := range r.shards {
		prof, err := core.NewShardProfiler(cfg, "")
		if err != nil {
			return nil, err
		}
		s := &biasShard{
			ch:   make(chan biasBatch, routerQueueDepth),
			done: make(chan struct{}),
			pool: &r.pool,
			prof: prof,
		}
		r.shards[i] = s
		go s.run()
	}
	return r, nil
}

// shardOf maps a branch PC to its worker with a splitmix64 finaliser,
// the same mixer internal/serve uses, so typical small dense PC spaces
// spread evenly at any shard count.
func (r *biasRouter) shardOf(pc trace.PC) int {
	x := uint64(pc)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(len(r.shards)))
}

func (r *biasRouter) getBuf() []trace.Event {
	if v := r.pool.Get(); v != nil {
		return v.([]trace.Event)
	}
	return make([]trace.Event, 0, routerBatchSize)
}

// Branch implements trace.Sink.
func (r *biasRouter) Branch(pc trace.PC, taken bool) {
	r.route(trace.Event{PC: pc, Taken: taken})
}

// BranchBatch implements trace.BatchSink.
func (r *biasRouter) BranchBatch(events []trace.Event) {
	for _, e := range events {
		r.route(e)
	}
}

func (r *biasRouter) route(e trace.Event) {
	i := r.shardOf(e.PC)
	if r.pending[i] == nil {
		r.pending[i] = r.getBuf()
	}
	r.pending[i] = append(r.pending[i], e)
	if len(r.pending[i]) >= routerBatchSize {
		r.shards[i].ch <- biasBatch{events: r.pending[i]}
		r.pending[i] = nil
	}
	r.sliceExec++
	if r.sliceExec >= r.cfg.SliceSize {
		r.broadcastSliceEnd()
		r.sliceExec = 0
	}
}

// broadcastSliceEnd flushes every pending batch with a slice-boundary
// marker, even to shards that saw no events this slice (the clock is
// global).
func (r *biasRouter) broadcastSliceEnd() {
	for i, s := range r.shards {
		s.ch <- biasBatch{events: r.pending[i], endSlice: true}
		r.pending[i] = nil
	}
}

// drain flushes pending batches, closes the queues and waits for the
// workers.
func (r *biasRouter) drain() {
	if r.closed {
		return
	}
	r.closed = true
	for i, s := range r.shards {
		if len(r.pending[i]) > 0 {
			s.ch <- biasBatch{events: r.pending[i]}
			r.pending[i] = nil
		}
		close(s.ch)
	}
	for _, s := range r.shards {
		<-s.done
	}
}

// finish applies the offline partial-slice flush rule to the global
// clock, drains the workers and merges the shard snapshots into the
// final report.
func (r *biasRouter) finish() (*core.Report, error) {
	if r.cfg.FlushPartialSlice && r.sliceExec > 0 && r.sliceExec >= r.cfg.SliceSize/2 {
		r.broadcastSliceEnd()
		r.sliceExec = 0
	}
	r.drain()
	snaps := make([]*core.Snapshot, len(r.shards))
	for i, s := range r.shards {
		snaps[i] = s.prof.Snapshot()
	}
	return core.MergeReports(snaps...)
}

// abort tears the workers down without the final flush (replay failed
// mid-stream).
func (r *biasRouter) abort() { r.drain() }
