package replay

import (
	"bytes"
	"testing"

	"twodprof/internal/core"
	"twodprof/internal/trace"
)

// TestProfileStaticAnnotation: Options.Static attaches the prefilter
// column on every replay path (sequential BTR1, parallel BTR2 in both
// metrics), restricted to observed branches, and its presence changes
// nothing else about the report.
func TestProfileStaticAnnotation(t *testing.T) {
	events := testEvents(t)
	static := map[trace.PC]string{
		events[0].PC: "input-dependent",
		1 << 40:      "const-taken", // never observed: must be dropped
	}
	cases := []struct {
		name    string
		raw     []byte
		metric  core.Metric
		workers int
	}{
		{"btr1-seq", encodeBTR1(t, events), core.MetricAccuracy, 1},
		{"btr2-acc-par", encodeBTR2(t, events, trace.BTR2Options{ChunkEvents: 4096}), core.MetricAccuracy, 4},
		{"btr2-bias-par", encodeBTR2(t, events, trace.BTR2Options{ChunkEvents: 4096}), core.MetricBias, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(tc.metric)
			plain, err := Profile(bytes.NewReader(tc.raw), cfg, "gshare-4KB", Options{Workers: tc.workers})
			if err != nil {
				t.Fatal(err)
			}
			if plain.StaticClass != nil {
				t.Fatalf("unannotated replay has StaticClass %v", plain.StaticClass)
			}
			ann, err := Profile(bytes.NewReader(tc.raw), cfg, "gshare-4KB", Options{Workers: tc.workers, Static: static})
			if err != nil {
				t.Fatal(err)
			}
			if got := ann.StaticClass[events[0].PC]; got != "input-dependent" {
				t.Errorf("StaticClass[%d] = %q", events[0].PC, got)
			}
			if _, ok := ann.StaticClass[1<<40]; ok {
				t.Error("unobserved PC kept in annotation")
			}
			// The annotation must not perturb the profile itself.
			ann.StaticClass = nil
			if !bytes.Equal(reportJSON(t, plain), reportJSON(t, ann)) {
				t.Error("annotation changed the underlying report")
			}
		})
	}
}
