package wal

import (
	"encoding/binary"
	"fmt"

	"twodprof/internal/trace"
)

// Branch-event payload codec for event records. The layout is
//
//	uvarint(count) takenBitmap[ceil(count/8)] uvarint(pc)*count
//
// — the taken bits are packed up front so the PC varints stay
// byte-aligned, and PCs are stored as full absolute uvarints so every
// 64-bit PC round-trips losslessly (no shift-packing of the taken bit,
// which would drop the top PC bit).
//
// The context-carrying variant (EncodeEventsCtx/DecodeEventsCtx)
// appends a run-length context table after the PCs:
//
//	uvarint(nRuns) nRuns × (uvarint(ctx) uvarint(runLen))
//
// with the run lengths summing to count. It is a distinct codec — the
// record type, not a sniff, says which one a payload is — so batches
// without contexts keep the exact historical bytes and old logs stay
// byte-identical.

// MaxEventsPerRecord bounds the decoded event count of one payload, so
// a corrupt count varint cannot demand an absurd allocation. Ingest
// writes one record per decode batch (hundreds of events), far below
// this.
const MaxEventsPerRecord = 1 << 20

// EncodeEvents appends the codec form of events to dst and returns the
// extended slice.
func EncodeEvents(dst []byte, events []trace.Event) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(events)))
	bitmap := make([]byte, (len(events)+7)/8)
	for i, ev := range events {
		if ev.Taken {
			bitmap[i/8] |= 1 << (i % 8)
		}
	}
	dst = append(dst, bitmap...)
	for _, ev := range events {
		dst = binary.AppendUvarint(dst, uint64(ev.PC))
	}
	return dst
}

// EncodeEventsCtx appends the context-carrying codec form of events to
// dst: the plain layout plus the run-length context table. Callers use
// it only when some event carries a non-zero context; an all-zero
// batch belongs in the plain codec.
func EncodeEventsCtx(dst []byte, events []trace.Event) []byte {
	dst = EncodeEvents(dst, events)
	var nRuns uint64
	for i := 0; i < len(events); {
		j := i + 1
		for j < len(events) && events[j].Ctx == events[i].Ctx {
			j++
		}
		nRuns++
		i = j
	}
	dst = binary.AppendUvarint(dst, nRuns)
	for i := 0; i < len(events); {
		j := i + 1
		for j < len(events) && events[j].Ctx == events[i].Ctx {
			j++
		}
		dst = binary.AppendUvarint(dst, uint64(events[i].Ctx))
		dst = binary.AppendUvarint(dst, uint64(j-i))
		i = j
	}
	return dst
}

// decodeEvents parses the plain event layout, returning the unparsed
// tail for the context-table variant to continue from.
func decodeEvents(dst []trace.Event, payload []byte) ([]trace.Event, []byte, error) {
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, nil, fmt.Errorf("wal: event record: bad count varint")
	}
	if count > MaxEventsPerRecord {
		return nil, nil, fmt.Errorf("wal: event record claims %d events (max %d)", count, MaxEventsPerRecord)
	}
	payload = payload[n:]
	nbitmap := (int(count) + 7) / 8
	if len(payload) < nbitmap {
		return nil, nil, fmt.Errorf("wal: event record: short taken bitmap")
	}
	bitmap := payload[:nbitmap]
	payload = payload[nbitmap:]
	for i := 0; i < int(count); i++ {
		pc, n := binary.Uvarint(payload)
		if n <= 0 {
			return nil, nil, fmt.Errorf("wal: event record: bad pc varint at event %d", i)
		}
		payload = payload[n:]
		dst = append(dst, trace.Event{
			PC:    trace.PC(pc),
			Taken: bitmap[i/8]&(1<<(i%8)) != 0,
		})
	}
	return dst, payload, nil
}

// DecodeEvents parses one plain event payload, appending to dst. Every
// byte of the payload must be consumed — trailing garbage means the
// record is not an event record of this version.
func DecodeEvents(dst []trace.Event, payload []byte) ([]trace.Event, error) {
	out, rest, err := decodeEvents(dst, payload)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wal: event record: %d trailing bytes", len(rest))
	}
	return out, nil
}

// DecodeEventsCtx parses one context-carrying event payload, appending
// to dst with the decoded events tagged by the run table.
func DecodeEventsCtx(dst []trace.Event, payload []byte) ([]trace.Event, error) {
	base := len(dst)
	out, rest, err := decodeEvents(dst, payload)
	if err != nil {
		return nil, err
	}
	count := len(out) - base
	nRuns, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("wal: event record: bad context run count")
	}
	rest = rest[n:]
	if nRuns == 0 || nRuns > uint64(count) {
		return nil, fmt.Errorf("wal: event record: %d context runs for %d events", nRuns, count)
	}
	covered := 0
	for r := uint64(0); r < nRuns; r++ {
		ctx, n := binary.Uvarint(rest)
		if n <= 0 || ctx > 1<<32-1 {
			return nil, fmt.Errorf("wal: event record: bad context in run %d", r)
		}
		rest = rest[n:]
		runLen, m := binary.Uvarint(rest)
		if m <= 0 || runLen == 0 || runLen > uint64(count-covered) {
			return nil, fmt.Errorf("wal: event record: bad run length in run %d", r)
		}
		rest = rest[m:]
		for i := 0; i < int(runLen); i++ {
			out[base+covered+i].Ctx = trace.Context(ctx)
		}
		covered += int(runLen)
	}
	if covered != count {
		return nil, fmt.Errorf("wal: event record: context runs cover %d of %d events", covered, count)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wal: event record: %d trailing bytes", len(rest))
	}
	return out, nil
}
