package wal

import (
	"encoding/binary"
	"fmt"

	"twodprof/internal/trace"
)

// Branch-event payload codec for event records. The layout is
//
//	uvarint(count) takenBitmap[ceil(count/8)] uvarint(pc)*count
//
// — the taken bits are packed up front so the PC varints stay
// byte-aligned, and PCs are stored as full absolute uvarints so every
// 64-bit PC round-trips losslessly (no shift-packing of the taken bit,
// which would drop the top PC bit).

// MaxEventsPerRecord bounds the decoded event count of one payload, so
// a corrupt count varint cannot demand an absurd allocation. Ingest
// writes one record per decode batch (hundreds of events), far below
// this.
const MaxEventsPerRecord = 1 << 20

// EncodeEvents appends the codec form of events to dst and returns the
// extended slice.
func EncodeEvents(dst []byte, events []trace.Event) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(events)))
	bitmap := make([]byte, (len(events)+7)/8)
	for i, ev := range events {
		if ev.Taken {
			bitmap[i/8] |= 1 << (i % 8)
		}
	}
	dst = append(dst, bitmap...)
	for _, ev := range events {
		dst = binary.AppendUvarint(dst, uint64(ev.PC))
	}
	return dst
}

// DecodeEvents parses one event payload, appending to dst. Every byte
// of the payload must be consumed — trailing garbage means the record
// is not an event record of this version.
func DecodeEvents(dst []trace.Event, payload []byte) ([]trace.Event, error) {
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, fmt.Errorf("wal: event record: bad count varint")
	}
	if count > MaxEventsPerRecord {
		return nil, fmt.Errorf("wal: event record claims %d events (max %d)", count, MaxEventsPerRecord)
	}
	payload = payload[n:]
	nbitmap := (int(count) + 7) / 8
	if len(payload) < nbitmap {
		return nil, fmt.Errorf("wal: event record: short taken bitmap")
	}
	bitmap := payload[:nbitmap]
	payload = payload[nbitmap:]
	for i := 0; i < int(count); i++ {
		pc, n := binary.Uvarint(payload)
		if n <= 0 {
			return nil, fmt.Errorf("wal: event record: bad pc varint at event %d", i)
		}
		payload = payload[n:]
		dst = append(dst, trace.Event{
			PC:    trace.PC(pc),
			Taken: bitmap[i/8]&(1<<(i%8)) != 0,
		})
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("wal: event record: %d trailing bytes", len(payload))
	}
	return dst, nil
}
