package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"twodprof/internal/trace"
)

// validLogBytes renders a well-formed log as raw bytes for fuzz seeds.
func validLogBytes(recs []Record) []byte {
	dir, err := os.MkdirTemp("", "walseed")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "seed.wal")
	l, err := Create(path, SyncPolicy{Mode: SyncNever})
	if err != nil {
		panic(err)
	}
	for _, rec := range recs {
		if err := l.Append(rec.Type, rec.Payload); err != nil {
			panic(err)
		}
	}
	if err := l.Close(); err != nil {
		panic(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		panic(err)
	}
	return raw
}

// FuzzWALRecord throws arbitrary bytes at the record scanner. The
// invariants: never panic, never allocate absurdly, and whatever
// records come back must be exactly a re-readable valid prefix — after
// Open's repair, a second scan of the same file must be clean and yield
// the same records.
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add([]byte("garbage that is not a wal"))
	f.Add(validLogBytes(nil))
	f.Add(validLogBytes([]Record{{Type: 1, Payload: []byte(`{"id":"x"}`)}}))
	f.Add(validLogBytes([]Record{
		{Type: 1, Payload: []byte("meta")},
		{Type: 2, Payload: bytes.Repeat([]byte{7}, 300)},
		{Type: 3, Payload: []byte("done")},
	}))
	// A valid log with a torn tail.
	torn := validLogBytes([]Record{{Type: 2, Payload: []byte("full record")}})
	f.Add(torn[:len(torn)-4])

	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.wal")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, repair, err := ReadAll(path)
		if err != nil {
			t.Fatalf("ReadAll I/O error on in-memory bytes: %v", err)
		}
		if repair != nil && repair.Reason == "bad header" {
			if len(recs) != 0 {
				t.Fatalf("bad header but %d records returned", len(recs))
			}
			return
		}
		// Open must repair the file so that a rescan is clean and agrees.
		l, recs2, _, err := Open(path, SyncPolicy{Mode: SyncNever})
		if err != nil {
			t.Fatalf("Open after clean ReadAll: %v", err)
		}
		l.Close()
		recs3, repair3, err := ReadAll(path)
		if err != nil {
			t.Fatal(err)
		}
		if repair3 != nil {
			t.Fatalf("repaired log still dirty: %+v", repair3)
		}
		if len(recs) != len(recs2) || len(recs2) != len(recs3) {
			t.Fatalf("record counts diverge: %d / %d / %d", len(recs), len(recs2), len(recs3))
		}
		for i := range recs {
			if recs[i].Type != recs3[i].Type || !bytes.Equal(recs[i].Payload, recs3[i].Payload) {
				t.Fatalf("record %d differs between scan and post-repair rescan", i)
			}
		}
	})
}

// FuzzWALEvents throws arbitrary payloads at the event codec: no
// panics, and anything that decodes must survive an encode/decode
// round-trip unchanged. (Byte-level canonicality is not an invariant —
// varints admit non-minimal encodings — but the decoded event sequence
// is.)
func FuzzWALEvents(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeEvents(nil, nil))
	f.Add(EncodeEvents(nil, []trace.Event{{PC: 10, Taken: true}}))
	f.Add(EncodeEvents(nil, []trace.Event{
		{PC: 1, Taken: true}, {PC: 1 << 40, Taken: false}, {PC: 3, Taken: true},
	}))

	f.Fuzz(func(t *testing.T, payload []byte) {
		events, err := DecodeEvents(nil, payload)
		if err != nil {
			return
		}
		again, err := DecodeEvents(nil, EncodeEvents(nil, events))
		if err != nil {
			t.Fatalf("re-encoded payload does not decode: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round-trip changed event count: %d -> %d", len(events), len(again))
		}
		for i := range events {
			if again[i] != events[i] {
				t.Fatalf("round-trip changed event %d: %+v -> %+v", i, events[i], again[i])
			}
		}
	})
}
