package wal

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"time"

	"twodprof/internal/trace"
)

func tmpLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.wal")
}

// writeLog creates a log at path holding recs and closes it.
func writeLog(t *testing.T, path string, recs []Record, policy SyncPolicy) {
	t.Helper()
	l, err := Create(path, policy)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := l.Append(rec.Type, rec.Payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func sampleRecords() []Record {
	return []Record{
		{Type: 1, Payload: []byte(`{"id":"s-1"}`)},
		{Type: 2, Payload: bytes.Repeat([]byte{0xAB}, 1000)},
		{Type: 2, Payload: nil}, // empty payload is legal
		{Type: 3, Payload: []byte("done")},
	}
}

func recordsEqual(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type {
			t.Errorf("record %d: type %d, want %d", i, got[i].Type, want[i].Type)
		}
		if !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Errorf("record %d: payload mismatch (%d vs %d bytes)", i, len(got[i].Payload), len(want[i].Payload))
		}
	}
}

func TestLogRoundtrip(t *testing.T) {
	for _, policy := range []SyncPolicy{
		{Mode: SyncAlways},
		{Mode: SyncNever},
		{Mode: SyncInterval, Interval: 10 * time.Millisecond},
	} {
		t.Run(policy.String(), func(t *testing.T) {
			path := tmpLog(t)
			want := sampleRecords()
			writeLog(t, path, want, policy)

			got, repair, err := ReadAll(path)
			if err != nil {
				t.Fatal(err)
			}
			if repair != nil {
				t.Fatalf("clean log reported repair: %+v", repair)
			}
			recordsEqual(t, got, want)
		})
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	path := tmpLog(t)
	writeLog(t, path, nil, SyncPolicy{Mode: SyncNever})
	if _, err := Create(path, SyncPolicy{Mode: SyncNever}); err == nil {
		t.Fatal("Create over an existing log succeeded")
	}
}

// TestTornTailRepair: a file cut mid-record loses exactly the torn
// record; Open truncates the file and appends resume at the repaired
// boundary.
func TestTornTailRepair(t *testing.T) {
	path := tmpLog(t)
	want := sampleRecords()
	writeLog(t, path, want, SyncPolicy{Mode: SyncNever})

	// Cut three bytes off the final record's payload.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	l, got, repair, err := Open(path, SyncPolicy{Mode: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if repair == nil {
		t.Fatal("torn log reported no repair")
	}
	if repair.Reason != "torn record" {
		t.Errorf("repair reason %q, want torn record", repair.Reason)
	}
	recordsEqual(t, got, want[:len(want)-1])

	// Appends must resume cleanly at the repaired boundary.
	if err := l.Append(9, []byte("after repair")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, repair, err = ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if repair != nil {
		t.Fatalf("repaired+appended log still reports repair: %+v", repair)
	}
	wantAfter := append(append([]Record{}, want[:len(want)-1]...), Record{Type: 9, Payload: []byte("after repair")})
	recordsEqual(t, got, wantAfter)
}

// TestCorruptRecordRejected: a checksum-corrupt record ends the trusted
// prefix — it and everything after it are dropped.
func TestCorruptRecordRejected(t *testing.T) {
	path := tmpLog(t)
	want := sampleRecords()
	writeLog(t, path, want, SyncPolicy{Mode: SyncNever})

	// Flip one byte inside the second record's payload. The second
	// record starts after the header and the first record's frame.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := len(magic) + frameHeader + 1 + len(want[0].Payload) // start of record 2's frame
	raw[off+frameHeader+10] ^= 0xFF                            // a payload byte of record 2
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	got, repair, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if repair == nil || repair.Reason != "checksum mismatch" {
		t.Fatalf("repair = %+v, want checksum mismatch", repair)
	}
	recordsEqual(t, got, want[:1])
	if repair.Offset != int64(off) {
		t.Errorf("repair offset %d, want %d", repair.Offset, off)
	}
}

// TestOversizeLengthRejected: a garbage length field must not drive an
// allocation; the scan stops at it.
func TestOversizeLengthRejected(t *testing.T) {
	path := tmpLog(t)
	writeLog(t, path, sampleRecords()[:1], SyncPolicy{Mode: SyncNever})

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var frame [frameHeader]byte
	binary.LittleEndian.PutUint32(frame[0:4], MaxRecord+1)
	if _, err := f.Write(frame[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, repair, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if repair == nil || repair.Reason != "oversized record" {
		t.Fatalf("repair = %+v, want oversized record", repair)
	}
	if len(got) != 1 {
		t.Fatalf("got %d records, want 1", len(got))
	}
}

func TestBadHeaderRefused(t *testing.T) {
	path := tmpLog(t)
	if err := os.WriteFile(path, []byte("not a wal file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Open(path, SyncPolicy{Mode: SyncNever}); err == nil {
		t.Fatal("Open of a non-WAL file succeeded")
	}
	recs, repair, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || repair == nil || repair.Reason != "bad header" {
		t.Fatalf("ReadAll = %d recs, repair %+v", len(recs), repair)
	}
}

func TestRewriteCompacts(t *testing.T) {
	path := tmpLog(t)
	writeLog(t, path, sampleRecords(), SyncPolicy{Mode: SyncNever})
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	compact := []Record{
		{Type: 1, Payload: []byte(`{"id":"s-1"}`)},
		{Type: 3, Payload: []byte("done")},
	}
	if err := Rewrite(path, compact); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink the log: %d -> %d bytes", before.Size(), after.Size())
	}
	got, repair, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if repair != nil {
		t.Fatalf("rewritten log reports repair: %+v", repair)
	}
	recordsEqual(t, got, compact)

	// No temp droppings left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries after rewrite, want 1", len(entries))
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in      string
		want    SyncPolicy
		wantErr bool
	}{
		{in: "always", want: SyncPolicy{Mode: SyncAlways}},
		{in: "never", want: SyncPolicy{Mode: SyncNever}},
		{in: "interval", want: SyncPolicy{Mode: SyncInterval, Interval: DefaultSyncInterval}},
		{in: "250ms", want: SyncPolicy{Mode: SyncInterval, Interval: 250 * time.Millisecond}},
		{in: "bogus", wantErr: true},
		{in: "-5s", wantErr: true},
		{in: "0s", wantErr: true},
	}
	for _, c := range cases {
		got, err := ParseSyncPolicy(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseSyncPolicy(%q): no error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSyncPolicy(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSyncPolicy(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

// TestIntervalFlusherSyncs: with an interval policy, appended data
// reaches the file (visible to an independent reader) without Close.
func TestIntervalFlusherSyncs(t *testing.T) {
	path := tmpLog(t)
	l, err := Create(path, SyncPolicy{Mode: SyncInterval, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(1, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		recs, _, err := ReadAll(path)
		if err == nil && len(recs) == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("interval flusher never made the record visible (recs=%d err=%v)", len(recs), err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestEventsCodecRoundtrip(t *testing.T) {
	cases := [][]trace.Event{
		nil,
		{{PC: 0, Taken: false}},
		{{PC: 1, Taken: true}, {PC: 2, Taken: false}, {PC: 3, Taken: true}},
		{{PC: 1<<64 - 1, Taken: true}, {PC: 1 << 63, Taken: false}}, // full 64-bit PCs survive
	}
	// A 1000-event mixed batch crossing several bitmap bytes.
	var big []trace.Event
	for i := 0; i < 1000; i++ {
		big = append(big, trace.Event{PC: trace.PC(i * 7), Taken: i%3 == 0})
	}
	cases = append(cases, big)

	for i, events := range cases {
		payload := EncodeEvents(nil, events)
		got, err := DecodeEvents(nil, payload)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(got) != len(events) {
			t.Fatalf("case %d: %d events, want %d", i, len(got), len(events))
		}
		for j := range events {
			if got[j] != events[j] {
				t.Fatalf("case %d event %d: %+v, want %+v", i, j, got[j], events[j])
			}
		}
	}
}

func TestDecodeEventsRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},                       // missing count
		{0x80},                   // truncated count varint
		{0x05},                   // count without bitmap
		{0x02, 0x00},             // bitmap but no pcs
		{0x01, 0x00, 0x00, 0x00}, // trailing bytes
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}, // absurd count
	}
	for i, payload := range cases {
		if _, err := DecodeEvents(nil, payload); err == nil {
			t.Errorf("case %d: DecodeEvents accepted garbage %x", i, payload)
		}
	}
}

func TestEventsCtxCodecRoundtrip(t *testing.T) {
	// Interleaved contexts with varied run lengths, plus a big batch
	// whose runs cross bitmap-byte boundaries.
	cases := [][]trace.Event{
		{{PC: 1, Ctx: 3, Taken: true}},
		{{PC: 1, Ctx: 0}, {PC: 2, Ctx: 1, Taken: true}, {PC: 3, Ctx: 1}, {PC: 4, Ctx: 0, Taken: true}},
	}
	var big []trace.Event
	for i := 0; i < 500; i++ {
		big = append(big, trace.Event{
			PC:    trace.PC(i * 5),
			Ctx:   trace.Context(i / 37 % 4),
			Taken: i%3 == 0,
		})
	}
	cases = append(cases, big)
	for i, events := range cases {
		payload := EncodeEventsCtx(nil, events)
		got, err := DecodeEventsCtx(nil, payload)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(got) != len(events) {
			t.Fatalf("case %d: %d events, want %d", i, len(got), len(events))
		}
		for j := range events {
			if got[j] != events[j] {
				t.Fatalf("case %d event %d: %+v, want %+v", i, j, got[j], events[j])
			}
		}
	}
}

func TestDecodeEventsCtxRejectsGarbage(t *testing.T) {
	good := EncodeEventsCtx(nil, []trace.Event{
		{PC: 1, Ctx: 2, Taken: true}, {PC: 2, Ctx: 2}, {PC: 3, Ctx: 1},
	})
	cases := [][]byte{
		good[:len(good)-1],                        // truncated run table
		append(good[:len(good):len(good)], 0x00),  // trailing byte
		EncodeEvents(nil, []trace.Event{{PC: 1}}), // plain payload: no run table
	}
	// Run table claiming more runs than events.
	bad := EncodeEvents(nil, []trace.Event{{PC: 1}})
	bad = append(bad, 0x05)
	cases = append(cases, bad)
	// Runs under-covering the events (1 run of length 1 for 2 events).
	under := EncodeEvents(nil, []trace.Event{{PC: 1}, {PC: 2}})
	under = append(under, 0x01, 0x00, 0x01)
	cases = append(cases, under)
	for i, payload := range cases {
		if _, err := DecodeEventsCtx(nil, payload); err == nil {
			t.Errorf("case %d: DecodeEventsCtx accepted garbage %x", i, payload)
		}
	}
	// And the plain decoder must refuse a ctx payload (trailing bytes).
	if _, err := DecodeEvents(nil, good); err == nil {
		t.Error("DecodeEvents accepted a context-carrying payload")
	}
}
