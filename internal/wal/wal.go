// Package wal implements the write-ahead log underneath the profiling
// daemon's durable sessions (DESIGN.md §3f). A log is a flat file of
// length-prefixed, CRC-checksummed records:
//
//	file   := header record*
//	header := magic[6]                       ("2DWAL" + format version)
//	record := len[4] crc[4] type[1] body[len-1]
//
// len and crc are little-endian uint32; len covers the type byte plus
// the body, crc is CRC-32C (Castagnoli) over the same bytes. Record
// types are opaque to this package — internal/serve defines the session
// schema on top.
//
// The failure model is a crashed writer, not a hostile disk: a record
// is either fully present and checksum-valid or it is part of the torn
// tail. Open repairs a log by scanning records until the first frame
// that is short, oversized or checksum-corrupt, truncating the file at
// the last valid record boundary, and resuming appends there. Nothing
// after a bad frame is trusted — a corrupt length field makes every
// later offset meaningless.
//
// Durability is a per-log SyncPolicy: SyncAlways fsyncs after every
// append (each acknowledged record survives a machine crash),
// SyncInterval fsyncs from a background goroutine at a fixed cadence
// (bounded data-loss window, near-SyncNever throughput), SyncNever
// leaves flushing to the OS (process crashes lose nothing, machine
// crashes may). Torn-tail repair makes all three safe to recover from.
package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// magic identifies a WAL file and pins the format version.
const magic = "2DWAL1"

// MaxRecord bounds a single record's length field. Anything larger is
// treated as corruption: the framing layer must never allocate
// attacker- or garbage-controlled amounts of memory.
const MaxRecord = 1 << 26 // 64 MiB

const frameHeader = 8 // len[4] + crc[4]

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncMode selects when appended records reach stable storage.
type SyncMode int

const (
	// SyncInterval flushes and fsyncs from a background goroutine every
	// Interval; an append is durable at most one interval after it
	// returns.
	SyncInterval SyncMode = iota
	// SyncAlways flushes and fsyncs before every Append returns.
	SyncAlways
	// SyncNever never fsyncs; the OS writes pages back at its leisure.
	SyncNever
)

// SyncPolicy is a SyncMode plus the cadence SyncInterval uses.
type SyncPolicy struct {
	Mode     SyncMode
	Interval time.Duration
}

// DefaultSyncInterval is the flush cadence ParseSyncPolicy's "interval"
// spelling resolves to.
const DefaultSyncInterval = 100 * time.Millisecond

// ParseSyncPolicy parses a -fsync flag value: "always", "never",
// "interval" (the default cadence) or a Go duration naming an explicit
// cadence ("250ms").
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncPolicy{Mode: SyncAlways}, nil
	case "never":
		return SyncPolicy{Mode: SyncNever}, nil
	case "interval", "":
		return SyncPolicy{Mode: SyncInterval, Interval: DefaultSyncInterval}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return SyncPolicy{}, fmt.Errorf("wal: bad fsync policy %q (want always, never, interval or a positive duration)", s)
	}
	return SyncPolicy{Mode: SyncInterval, Interval: d}, nil
}

// String renders the policy in the spelling ParseSyncPolicy accepts.
func (p SyncPolicy) String() string {
	switch p.Mode {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		if p.Interval <= 0 {
			return "interval"
		}
		return p.Interval.String()
	}
}

// Validate reports a non-nil error when the policy is unusable.
func (p SyncPolicy) Validate() error {
	switch p.Mode {
	case SyncAlways, SyncNever:
		return nil
	case SyncInterval:
		if p.Interval <= 0 {
			return fmt.Errorf("wal: SyncInterval policy needs a positive Interval")
		}
		return nil
	default:
		return fmt.Errorf("wal: unknown sync mode %d", p.Mode)
	}
}

// Record is one framed log entry: a type tag plus an opaque payload.
type Record struct {
	Type    byte
	Payload []byte
}

// RepairInfo describes a tail Open dropped (or ReadAll would drop).
type RepairInfo struct {
	// Offset is the file offset of the last valid record boundary; the
	// bytes from Offset to the original end were (or would be) dropped.
	Offset int64
	// DroppedBytes is how many trailing bytes were invalid.
	DroppedBytes int64
	// Reason says what ended the scan: "torn record", "checksum
	// mismatch", "oversized record", "bad header".
	Reason string
}

// Log is an append-only record log. Append, Sync and Close are safe for
// concurrent use; the background interval flusher shares the same lock.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	size   int64
	policy SyncPolicy
	dirty  bool
	closed bool
	stop   chan struct{}
	done   chan struct{}
}

// Create creates a new, empty log at path. It fails if the file already
// exists — one session, one log, never silently overwritten.
func Create(path string, policy SyncPolicy) (*Log, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", path, err)
	}
	l := newLog(f, policy, 0)
	if _, err := l.w.WriteString(magic); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: writing header: %w", err)
	}
	l.size = int64(len(magic))
	l.dirty = true
	return l, nil
}

// Open opens an existing log for recovery: it scans every record,
// repairs a torn or corrupt tail by truncating the file at the last
// valid record boundary, and returns the log positioned for further
// appends. repair is nil when the log was clean.
func Open(path string, policy SyncPolicy) (*Log, []Record, *RepairInfo, error) {
	if err := policy.Validate(); err != nil {
		return nil, nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	recs, repair, err := scan(f)
	if err != nil {
		f.Close()
		return nil, nil, nil, fmt.Errorf("wal: scanning %s: %w", path, err)
	}
	if repair != nil && repair.Reason == "bad header" {
		// Nothing in the file can be trusted, including offset zero;
		// refuse instead of quietly truncating a whole log away.
		f.Close()
		return nil, nil, nil, fmt.Errorf("wal: %s: bad header", path)
	}
	end := int64(len(magic))
	if repair != nil {
		end = repair.Offset
	} else {
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, nil, nil, err
		}
		end = st.Size()
	}
	if repair != nil {
		if err := f.Truncate(repair.Offset); err != nil {
			f.Close()
			return nil, nil, nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	l := newLog(f, policy, end)
	return l, recs, repair, nil
}

// ReadAll scans a log read-only and returns its valid records plus the
// repair Open would perform (nil when the log is clean). The file is
// not modified.
func ReadAll(path string) ([]Record, *RepairInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	defer f.Close()
	recs, repair, err := scan(f)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: scanning %s: %w", path, err)
	}
	return recs, repair, nil
}

// newLog assembles the writer state and starts the interval flusher
// when the policy asks for one.
func newLog(f *os.File, policy SyncPolicy, size int64) *Log {
	l := &Log{
		f:      f,
		w:      bufio.NewWriterSize(f, 1<<16),
		size:   size,
		policy: policy,
	}
	if policy.Mode == SyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.flusher()
	}
	return l
}

// flusher is the SyncInterval background goroutine: fsync when dirty,
// every Interval, until Close.
func (l *Log) flusher() {
	defer close(l.done)
	t := time.NewTicker(l.policy.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if l.dirty && !l.closed {
				l.syncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// Append frames and writes one record. Under SyncAlways it is durable
// when Append returns; under SyncInterval within one interval; under
// SyncNever when the OS gets around to it.
func (l *Log) Append(typ byte, payload []byte) error {
	if len(payload)+1 > MaxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds MaxRecord", len(payload))
	}
	var hdr [frameHeader + 1]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)+1))
	crc := crc32.Checksum([]byte{typ}, castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	hdr[8] = typ

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: append to closed log")
	}
	if _, err := l.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := l.w.Write(payload); err != nil {
		return err
	}
	l.size += int64(len(hdr) + len(payload))
	l.dirty = true
	if l.policy.Mode == SyncAlways {
		return l.syncLocked()
	}
	return nil
}

// Sync flushes buffered frames and fsyncs the file.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: sync of closed log")
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	return nil
}

// Size returns the log's current length in bytes, including frames not
// yet flushed to the OS.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close flushes, fsyncs and closes the log. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	err := l.w.Flush()
	if serr := l.f.Sync(); err == nil {
		err = serr
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.mu.Unlock()
	if l.stop != nil {
		close(l.stop)
		<-l.done
	}
	return err
}

// Rewrite atomically replaces the log at path with one containing
// exactly recs: write to a temp file in the same directory, fsync,
// rename over, fsync the directory. This is the compaction primitive —
// a crash at any point leaves either the old or the new log, never a
// mix.
func Rewrite(path string, recs []Record) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".compact-*")
	if err != nil {
		return fmt.Errorf("wal: rewrite temp: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	w := bufio.NewWriterSize(tmp, 1<<16)
	if _, err := w.WriteString(magic); err != nil {
		tmp.Close()
		return err
	}
	var hdr [frameHeader + 1]byte
	for _, rec := range recs {
		if len(rec.Payload)+1 > MaxRecord {
			tmp.Close()
			return fmt.Errorf("wal: rewrite record of %d bytes exceeds MaxRecord", len(rec.Payload))
		}
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(rec.Payload)+1))
		crc := crc32.Checksum([]byte{rec.Type}, castagnoli)
		crc = crc32.Update(crc, castagnoli, rec.Payload)
		binary.LittleEndian.PutUint32(hdr[4:8], crc)
		hdr[8] = rec.Type
		if _, err := w.Write(hdr[:]); err != nil {
			tmp.Close()
			return err
		}
		if _, err := w.Write(rec.Payload); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("wal: rewrite rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// scan reads records from the start of f. It returns the valid prefix
// plus a RepairInfo when the tail is torn or corrupt; an error is only
// returned for real I/O failures.
func scan(f *os.File) ([]Record, *RepairInfo, error) {
	r := bufio.NewReaderSize(io.NewSectionReader(f, 0, 1<<62), 1<<16)
	var hdr [len(magic)]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, &RepairInfo{Reason: "bad header"}, nil
	}
	if string(hdr[:]) != magic {
		return nil, &RepairInfo{Reason: "bad header"}, nil
	}
	var (
		recs   []Record
		offset = int64(len(magic))
		frame  [frameHeader]byte
	)
	stop := func(reason string) ([]Record, *RepairInfo, error) {
		st, err := f.Stat()
		if err != nil {
			return nil, nil, err
		}
		return recs, &RepairInfo{
			Offset:       offset,
			DroppedBytes: st.Size() - offset,
			Reason:       reason,
		}, nil
	}
	for {
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			if err == io.EOF {
				return recs, nil, nil // clean end
			}
			return stop("torn record")
		}
		n := binary.LittleEndian.Uint32(frame[0:4])
		want := binary.LittleEndian.Uint32(frame[4:8])
		if n < 1 || n > MaxRecord {
			return stop("oversized record")
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return stop("torn record")
		}
		if crc32.Checksum(body, castagnoli) != want {
			return stop("checksum mismatch")
		}
		recs = append(recs, Record{Type: body[0], Payload: body[1:]})
		offset += int64(frameHeader) + int64(n)
	}
}
