package bpred

import (
	"fmt"

	"twodprof/internal/trace"
)

// Gshare is McFarling's gshare predictor: a table of 2-bit counters
// indexed by the XOR of the global history and the branch PC. The
// paper's baseline profiler predictor is the 4 KB configuration:
// 14 index bits (16 K counters) and a 14-bit history.
type Gshare struct {
	indexBits int
	table     []Counter2
	hist      History
	name      string
}

// NewGshare builds a gshare with 2^indexBits counters and historyBits of
// global history (historyBits <= indexBits is typical; larger is
// allowed, the excess history simply folds away under the index mask).
func NewGshare(indexBits, historyBits int) *Gshare {
	if indexBits <= 0 || indexBits > 30 {
		panic(fmt.Sprintf("bpred: invalid gshare index bits %d", indexBits))
	}
	g := &Gshare{
		indexBits: indexBits,
		table:     make([]Counter2, 1<<uint(indexBits)),
		hist:      NewHistory(historyBits),
		name:      fmt.Sprintf("gshare-%dKB", (1<<uint(indexBits))*2/8/1024),
	}
	g.Reset()
	return g
}

// NewGshare4KB returns the paper's baseline 4 KB gshare (14-bit index,
// 14-bit history).
func NewGshare4KB() *Gshare { return NewGshare(14, 14) }

func (g *Gshare) index(pc trace.PC) uint64 {
	mask := uint64(1)<<uint(g.indexBits) - 1
	return (uint64(pc) ^ g.hist.Bits()) & mask
}

// Predict implements Predictor.
func (g *Gshare) Predict(pc trace.PC) bool {
	return g.table[g.index(pc)].Taken()
}

// Update implements Predictor.
func (g *Gshare) Update(pc trace.PC, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].Update(taken)
	g.hist.Push(taken)
}

// Name implements Predictor.
func (g *Gshare) Name() string { return g.name }

// Reset implements Predictor.
func (g *Gshare) Reset() {
	for i := range g.table {
		g.table[i] = WeakNT
	}
	g.hist.Reset()
}

// Bimodal is a PC-indexed table of 2-bit counters with no history.
type Bimodal struct {
	indexBits int
	table     []Counter2
}

// NewBimodal builds a bimodal predictor with 2^indexBits counters.
func NewBimodal(indexBits int) *Bimodal {
	if indexBits <= 0 || indexBits > 30 {
		panic(fmt.Sprintf("bpred: invalid bimodal index bits %d", indexBits))
	}
	b := &Bimodal{indexBits: indexBits, table: make([]Counter2, 1<<uint(indexBits))}
	b.Reset()
	return b
}

func (b *Bimodal) index(pc trace.PC) uint64 {
	return uint64(pc) & (uint64(1)<<uint(b.indexBits) - 1)
}

// Predict implements Predictor.
func (b *Bimodal) Predict(pc trace.PC) bool { return b.table[b.index(pc)].Taken() }

// Update implements Predictor.
func (b *Bimodal) Update(pc trace.PC, taken bool) {
	i := b.index(pc)
	b.table[i] = b.table[i].Update(taken)
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return fmt.Sprintf("bimodal-%d", b.indexBits) }

// Reset implements Predictor.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = WeakNT
	}
}

// GAg is a two-level predictor whose single global history register
// indexes the pattern table directly (no PC mixing).
type GAg struct {
	table []Counter2
	hist  History
	bits  int
}

// NewGAg builds a GAg with historyBits of history and 2^historyBits
// counters.
func NewGAg(historyBits int) *GAg {
	if historyBits <= 0 || historyBits > 30 {
		panic(fmt.Sprintf("bpred: invalid GAg history bits %d", historyBits))
	}
	g := &GAg{table: make([]Counter2, 1<<uint(historyBits)), hist: NewHistory(historyBits), bits: historyBits}
	g.Reset()
	return g
}

// Predict implements Predictor.
func (g *GAg) Predict(pc trace.PC) bool { return g.table[g.hist.Bits()].Taken() }

// Update implements Predictor.
func (g *GAg) Update(pc trace.PC, taken bool) {
	i := g.hist.Bits()
	g.table[i] = g.table[i].Update(taken)
	g.hist.Push(taken)
}

// Name implements Predictor.
func (g *GAg) Name() string { return fmt.Sprintf("gag-%d", g.bits) }

// Reset implements Predictor.
func (g *GAg) Reset() {
	for i := range g.table {
		g.table[i] = WeakNT
	}
	g.hist.Reset()
}

// PAg is a two-level local-history predictor: a PC-indexed table of
// per-branch history registers selects a counter in a shared pattern
// table.
type PAg struct {
	bhtBits  int
	histBits int
	bht      []uint64
	pht      []Counter2
}

// NewPAg builds a PAg with 2^bhtBits local history registers of
// histBits each and a 2^histBits-entry pattern table.
func NewPAg(bhtBits, histBits int) *PAg {
	if bhtBits <= 0 || bhtBits > 24 || histBits <= 0 || histBits > 24 {
		panic(fmt.Sprintf("bpred: invalid PAg config %d/%d", bhtBits, histBits))
	}
	p := &PAg{
		bhtBits:  bhtBits,
		histBits: histBits,
		bht:      make([]uint64, 1<<uint(bhtBits)),
		pht:      make([]Counter2, 1<<uint(histBits)),
	}
	p.Reset()
	return p
}

func (p *PAg) bhtIndex(pc trace.PC) uint64 {
	return uint64(pc) & (uint64(1)<<uint(p.bhtBits) - 1)
}

// Predict implements Predictor.
func (p *PAg) Predict(pc trace.PC) bool {
	h := p.bht[p.bhtIndex(pc)]
	return p.pht[h].Taken()
}

// Update implements Predictor.
func (p *PAg) Update(pc trace.PC, taken bool) {
	bi := p.bhtIndex(pc)
	h := p.bht[bi]
	p.pht[h] = p.pht[h].Update(taken)
	h <<= 1
	if taken {
		h |= 1
	}
	p.bht[bi] = h & (uint64(1)<<uint(p.histBits) - 1)
}

// Name implements Predictor.
func (p *PAg) Name() string { return fmt.Sprintf("pag-%d.%d", p.bhtBits, p.histBits) }

// Reset implements Predictor.
func (p *PAg) Reset() {
	for i := range p.bht {
		p.bht[i] = 0
	}
	for i := range p.pht {
		p.pht[i] = WeakNT
	}
}
