// Package bpred implements the branch predictors used by the paper — a
// 4 KB gshare profiler predictor and a 16 KB perceptron target predictor
// — plus the classic predictors (bimodal, GAg, PAg local, tournament,
// loop, static) used for ablations and the predictor-mismatch study.
//
// All predictors are deterministic software models with a uniform
// Predict/Update interface; sizes follow the hardware-budget convention
// of the papers they come from (a "4 KB gshare" is 16 K two-bit
// counters).
package bpred

import (
	"fmt"

	"twodprof/internal/trace"
)

// Predictor is a dynamic branch direction predictor. Predict must not
// mutate state; Update is called with the true outcome after every
// prediction, in program order.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc trace.PC) bool
	// Update trains the predictor with the resolved outcome.
	Update(pc trace.PC, taken bool)
	// Name identifies the configuration, e.g. "gshare-4KB".
	Name() string
	// Reset restores the power-on state.
	Reset()
}

// Counter2 is a 2-bit saturating counter. States 0-1 predict not-taken,
// 2-3 predict taken. The power-on state is weakly not-taken (1).
type Counter2 uint8

// WeakNT is the conventional power-on state of a 2-bit counter.
const WeakNT Counter2 = 1

// Taken reports the direction the counter currently predicts.
func (c Counter2) Taken() bool { return c >= 2 }

// Update returns the counter after training with one outcome.
func (c Counter2) Update(taken bool) Counter2 {
	return ctrUpd(c, Counter2(b2u(taken)))
}

// ctrUpd is the branchless saturating 2-bit counter update: t must be 0
// or 1. Saturation falls out of uint8 wraparound — (c-3)>>7 is 1 exactly
// when c < 3 (the subtraction wrapped, setting the sign bit) and
// (0-c)>>7 is 1 exactly when c > 0, so the counter moves toward t by one
// unless already at the rail. No conditionals, so the predictor inner
// loops stay branch-free on data (see DESIGN.md §3h).
func ctrUpd(c, t Counter2) Counter2 {
	return c + (t & ((c - 3) >> 7)) - ((1 - t) & ((0 - c) >> 7))
}

// b2u converts a bool to 0/1. The compiler lowers this to a flag
// materialisation (SETcc), not a branch.
func b2u(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// History is a bounded global branch history register.
type History struct {
	bits uint64
	mask uint64
}

// NewHistory creates an n-bit history register (1 <= n <= 64).
func NewHistory(n int) History {
	if n <= 0 || n > 64 {
		panic(fmt.Sprintf("bpred: invalid history length %d", n))
	}
	var mask uint64
	if n == 64 {
		mask = ^uint64(0)
	} else {
		mask = (1 << uint(n)) - 1
	}
	return History{mask: mask}
}

// Push shifts one outcome into the register.
func (h *History) Push(taken bool) {
	h.bits <<= 1
	if taken {
		h.bits |= 1
	}
	h.bits &= h.mask
}

// Bits returns the current history pattern.
func (h *History) Bits() uint64 { return h.bits }

// Reset clears the register.
func (h *History) Reset() { h.bits = 0 }

// Bit reports the i-th most recent outcome (i = 0 is the latest).
func (h *History) Bit(i int) bool { return h.bits>>uint(i)&1 == 1 }
