package bpred

import (
	"fmt"

	"twodprof/internal/trace"
)

// Agree is the agree predictor (Sprangle et al., ISCA 1997): each
// branch carries a biasing bit (set to its first observed outcome) and
// the gshare-indexed pattern table predicts whether the outcome will
// *agree* with that bias. Destructive aliasing becomes constructive
// because most branches agree with their bias most of the time.
type Agree struct {
	indexBits int
	table     []Counter2 // counter taken-state means "agrees with bias"
	hist      History

	// The bias bits live in a flat 2-bit-per-PC window (bit 0 value,
	// bit 1 latched) anchored at the first PC seen — branch PCs cluster
	// tightly, so in practice every lookup is one byte load. PCs outside
	// the window (or before the anchor) fall back to the exact map, so
	// semantics are identical to a per-PC map at any PC distribution.
	biasBase  trace.PC
	biasDense []uint8
	bias      map[trace.PC]bool
}

// agreeDenseWindow is the span of PCs the flat bias window covers.
const agreeDenseWindow = 1 << 16

// NewAgree builds an agree predictor with 2^indexBits counters and
// historyBits of global history.
func NewAgree(indexBits, historyBits int) *Agree {
	if indexBits <= 0 || indexBits > 30 {
		panic(fmt.Sprintf("bpred: invalid agree index bits %d", indexBits))
	}
	a := &Agree{
		indexBits: indexBits,
		table:     make([]Counter2, 1<<uint(indexBits)),
		hist:      NewHistory(historyBits),
	}
	a.Reset()
	return a
}

func (a *Agree) index(pc trace.PC) uint64 {
	mask := uint64(1)<<uint(a.indexBits) - 1
	return (uint64(pc) ^ a.hist.Bits()) & mask
}

// biasOf returns the branch's biasing bit, defaulting to taken for
// never-seen branches (backward-taken heuristic territory; a fixed
// default keeps Predict pure).
func (a *Agree) biasOf(pc trace.PC) bool {
	if off := uint64(pc - a.biasBase); a.biasDense != nil && off < agreeDenseWindow {
		e := a.biasDense[off]
		return e&2 == 0 || e&1 != 0
	}
	if b, ok := a.bias[pc]; ok {
		return b
	}
	return true
}

// latchBias records pc's first observed outcome as its biasing bit. The
// first branch ever seen anchors the dense window.
func (a *Agree) latchBias(pc trace.PC, taken bool) {
	if a.biasDense == nil {
		a.biasBase = pc
		a.biasDense = make([]uint8, agreeDenseWindow)
	}
	if off := uint64(pc - a.biasBase); off < agreeDenseWindow {
		if a.biasDense[off]&2 == 0 {
			a.biasDense[off] = 2 | b2u(taken)
		}
		return
	}
	if a.bias == nil {
		a.bias = make(map[trace.PC]bool)
	}
	if _, ok := a.bias[pc]; !ok {
		a.bias[pc] = taken
	}
}

// Predict implements Predictor.
func (a *Agree) Predict(pc trace.PC) bool {
	agree := a.table[a.index(pc)].Taken()
	return agree == a.biasOf(pc)
}

// Update implements Predictor. The first execution latches the biasing
// bit (modelling the bias bit stored in the BTB/instruction).
func (a *Agree) Update(pc trace.PC, taken bool) {
	a.latchBias(pc, taken)
	i := a.index(pc)
	a.table[i] = ctrUpd(a.table[i], Counter2(b2u(taken == a.biasOf(pc))))
	a.hist.Push(taken)
}

// Name implements Predictor.
func (a *Agree) Name() string { return fmt.Sprintf("agree-%d", a.indexBits) }

// Reset implements Predictor.
func (a *Agree) Reset() {
	for i := range a.table {
		// Power-on: weakly agree.
		a.table[i] = 2
	}
	a.hist.Reset()
	a.biasDense = nil
	a.biasBase = 0
	a.bias = nil
}

// Gskew is the 2bc-gskew-style predictor (Michaud, Seznec, Uhlig,
// ISCA 1997, simplified): three counter banks indexed by different
// skewing hashes of (pc, history) vote by majority, so an alias in one
// bank is usually outvoted by the other two.
type Gskew struct {
	bankBits int
	// banks is one flat array: bank b occupies [b<<bankBits, (b+1)<<bankBits).
	banks []Counter2
	hist  History
}

// NewGskew builds a gskew with three 2^bankBits banks and historyBits
// of history.
func NewGskew(bankBits, historyBits int) *Gskew {
	if bankBits <= 0 || bankBits > 28 {
		panic(fmt.Sprintf("bpred: invalid gskew bank bits %d", bankBits))
	}
	g := &Gskew{
		bankBits: bankBits,
		banks:    make([]Counter2, 3<<uint(bankBits)),
		hist:     NewHistory(historyBits),
	}
	g.Reset()
	return g
}

// skewIdx mixes pc and history differently per bank and returns the
// flat-array index of the bank's counter. The rotations keep the three
// indices decorrelated, which is the entire point of the scheme.
func (g *Gskew) skewIdx(bank int, pc trace.PC, h uint64) uint64 {
	p := uint64(pc)
	var v uint64
	switch bank {
	case 0:
		v = p ^ h
	case 1:
		v = p ^ (h<<3 | h>>13) ^ p>>5
	default:
		v = (p<<2 | p>>11) ^ h ^ h>>7
	}
	return uint64(bank)<<uint(g.bankBits) | v&(uint64(1)<<uint(g.bankBits)-1)
}

// Predict implements Predictor: majority vote of the three banks.
func (g *Gskew) Predict(pc trace.PC) bool {
	h := g.hist.Bits()
	votes := g.banks[g.skewIdx(0, pc, h)]>>1 +
		g.banks[g.skewIdx(1, pc, h)]>>1 +
		g.banks[g.skewIdx(2, pc, h)]>>1
	return votes >= 2
}

// Update implements Predictor. All banks train (the partial-update
// policy of the full design is omitted for clarity).
func (g *Gskew) Update(pc trace.PC, taken bool) {
	h := g.hist.Bits()
	t := Counter2(b2u(taken))
	for b := 0; b < 3; b++ {
		i := g.skewIdx(b, pc, h)
		g.banks[i] = ctrUpd(g.banks[i], t)
	}
	g.hist.Push(taken)
}

// Name implements Predictor.
func (g *Gskew) Name() string { return fmt.Sprintf("gskew-%d", g.bankBits) }

// Reset implements Predictor.
func (g *Gskew) Reset() {
	for i := range g.banks {
		g.banks[i] = WeakNT
	}
	g.hist.Reset()
}
