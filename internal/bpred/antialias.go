package bpred

import (
	"fmt"

	"twodprof/internal/trace"
)

// Agree is the agree predictor (Sprangle et al., ISCA 1997): each
// branch carries a biasing bit (set to its first observed outcome) and
// the gshare-indexed pattern table predicts whether the outcome will
// *agree* with that bias. Destructive aliasing becomes constructive
// because most branches agree with their bias most of the time.
type Agree struct {
	indexBits int
	table     []Counter2 // counter taken-state means "agrees with bias"
	hist      History
	bias      map[trace.PC]bool
}

// NewAgree builds an agree predictor with 2^indexBits counters and
// historyBits of global history.
func NewAgree(indexBits, historyBits int) *Agree {
	if indexBits <= 0 || indexBits > 30 {
		panic(fmt.Sprintf("bpred: invalid agree index bits %d", indexBits))
	}
	a := &Agree{
		indexBits: indexBits,
		table:     make([]Counter2, 1<<uint(indexBits)),
		hist:      NewHistory(historyBits),
		bias:      make(map[trace.PC]bool),
	}
	a.Reset()
	return a
}

func (a *Agree) index(pc trace.PC) uint64 {
	mask := uint64(1)<<uint(a.indexBits) - 1
	return (uint64(pc) ^ a.hist.Bits()) & mask
}

// biasOf returns the branch's biasing bit, defaulting to taken for
// never-seen branches (backward-taken heuristic territory; a fixed
// default keeps Predict pure).
func (a *Agree) biasOf(pc trace.PC) bool {
	if b, ok := a.bias[pc]; ok {
		return b
	}
	return true
}

// Predict implements Predictor.
func (a *Agree) Predict(pc trace.PC) bool {
	agree := a.table[a.index(pc)].Taken()
	return agree == a.biasOf(pc)
}

// Update implements Predictor. The first execution latches the biasing
// bit (modelling the bias bit stored in the BTB/instruction).
func (a *Agree) Update(pc trace.PC, taken bool) {
	if _, ok := a.bias[pc]; !ok {
		a.bias[pc] = taken
	}
	i := a.index(pc)
	a.table[i] = a.table[i].Update(taken == a.biasOf(pc))
	a.hist.Push(taken)
}

// Name implements Predictor.
func (a *Agree) Name() string { return fmt.Sprintf("agree-%d", a.indexBits) }

// Reset implements Predictor.
func (a *Agree) Reset() {
	for i := range a.table {
		// Power-on: weakly agree.
		a.table[i] = 2
	}
	a.hist.Reset()
	a.bias = make(map[trace.PC]bool)
}

// Gskew is the 2bc-gskew-style predictor (Michaud, Seznec, Uhlig,
// ISCA 1997, simplified): three counter banks indexed by different
// skewing hashes of (pc, history) vote by majority, so an alias in one
// bank is usually outvoted by the other two.
type Gskew struct {
	bankBits int
	banks    [3][]Counter2
	hist     History
}

// NewGskew builds a gskew with three 2^bankBits banks and historyBits
// of history.
func NewGskew(bankBits, historyBits int) *Gskew {
	if bankBits <= 0 || bankBits > 28 {
		panic(fmt.Sprintf("bpred: invalid gskew bank bits %d", bankBits))
	}
	g := &Gskew{bankBits: bankBits, hist: NewHistory(historyBits)}
	for b := range g.banks {
		g.banks[b] = make([]Counter2, 1<<uint(bankBits))
	}
	g.Reset()
	return g
}

// skew mixes pc and history differently per bank. The rotations keep
// the three indices decorrelated, which is the entire point of the
// scheme.
func (g *Gskew) skew(bank int, pc trace.PC) uint64 {
	h := g.hist.Bits()
	p := uint64(pc)
	var v uint64
	switch bank {
	case 0:
		v = p ^ h
	case 1:
		v = p ^ (h<<3 | h>>13) ^ p>>5
	default:
		v = (p<<2 | p>>11) ^ h ^ h>>7
	}
	return v & (uint64(1)<<uint(g.bankBits) - 1)
}

// Predict implements Predictor: majority vote of the three banks.
func (g *Gskew) Predict(pc trace.PC) bool {
	votes := 0
	for b := range g.banks {
		if g.banks[b][g.skew(b, pc)].Taken() {
			votes++
		}
	}
	return votes >= 2
}

// Update implements Predictor. All banks train (the partial-update
// policy of the full design is omitted for clarity).
func (g *Gskew) Update(pc trace.PC, taken bool) {
	for b := range g.banks {
		i := g.skew(b, pc)
		g.banks[b][i] = g.banks[b][i].Update(taken)
	}
	g.hist.Push(taken)
}

// Name implements Predictor.
func (g *Gskew) Name() string { return fmt.Sprintf("gskew-%d", g.bankBits) }

// Reset implements Predictor.
func (g *Gskew) Reset() {
	for b := range g.banks {
		for i := range g.banks[b] {
			g.banks[b][i] = WeakNT
		}
	}
	g.hist.Reset()
}
