package bpred

import (
	"testing"

	"twodprof/internal/trace"
)

func TestAggModeParse(t *testing.T) {
	for _, tc := range []struct {
		s    string
		mode AggMode
	}{{"shared", AggShared}, {"private", AggPrivate}} {
		got, err := ParseAggMode(tc.s)
		if err != nil || got != tc.mode {
			t.Errorf("ParseAggMode(%q) = %v, %v", tc.s, got, err)
		}
		if got.String() != tc.s {
			t.Errorf("AggMode %v String() = %q, want %q", got, got.String(), tc.s)
		}
	}
	if _, err := ParseAggMode("smt"); err == nil {
		t.Error("ParseAggMode accepted an unknown mode")
	}
}

func TestContextSetShared(t *testing.T) {
	cs, err := NewContextSet(NameGshare4KB, AggShared)
	if err != nil {
		t.Fatal(err)
	}
	p0 := cs.For(0)
	if cs.For(3) != p0 || cs.For(7) != p0 {
		t.Fatal("shared mode must resolve every context to the same instance")
	}
	if got := cs.Contexts(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("shared Contexts() = %v, want [0]", got)
	}
}

func TestContextSetPrivate(t *testing.T) {
	cs, err := NewContextSet(NameGshare4KB, AggPrivate)
	if err != nil {
		t.Fatal(err)
	}
	p0, p3 := cs.For(0), cs.For(3)
	if p0 == p3 {
		t.Fatal("private mode must allocate distinct instances per context")
	}
	if cs.For(3) != p3 {
		t.Fatal("private instances must be stable across lookups")
	}
	// Training one context must not leak into another: drive context 3
	// to strongly-taken on one site and check context 0 is untouched.
	pc := trace.PC(0x400010)
	for i := 0; i < 64; i++ {
		p3.Update(pc, true)
	}
	if !p3.Predict(pc) {
		t.Fatal("context 3 failed to learn its own stream")
	}
	if p0.Predict(pc) {
		t.Fatal("context 0 saw context 3's training (tables not private)")
	}
	want := []trace.Context{0, 3}
	got := cs.Contexts()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Contexts() = %v, want %v", got, want)
	}
}

// TestContextSetPrivateMatchesIndependent checks the semantic claim
// behind private aggregation: an interleaved stream driven through a
// private ContextSet yields, per context, exactly the predictor state
// of running that context's sub-stream alone.
func TestContextSetPrivateMatchesIndependent(t *testing.T) {
	ev, _ := soaStream(4000)
	const nctx = 4
	cs, err := NewContextSet(NameGshare4KB, AggPrivate)
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]Predictor, nctx)
	for c := range refs {
		refs[c] = MustNew(NameGshare4KB)
	}
	for i, e := range ev {
		ctx := trace.Context(i % nctx)
		p := cs.For(ctx)
		p.Update(e.PC, e.Taken)
		refs[ctx].Update(e.PC, e.Taken)
	}
	for c := 0; c < nctx; c++ {
		p := cs.For(trace.Context(c))
		for i := 0; i < 256; i++ {
			pc := trace.PC(0x400000 + 4*i)
			if p.Predict(pc) != refs[c].Predict(pc) {
				t.Fatalf("context %d diverged from its independent run at pc %#x", c, pc)
			}
		}
	}
}

func TestNewContextSetErrors(t *testing.T) {
	if _, err := NewContextSet("no-such-predictor", AggShared); err == nil {
		t.Error("NewContextSet accepted an unknown predictor name")
	}
	if _, err := NewContextSet(NameGshare4KB, AggMode(9)); err == nil {
		t.Error("NewContextSet accepted an invalid mode")
	}
}
