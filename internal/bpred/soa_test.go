package bpred

import (
	"testing"

	"twodprof/internal/rng"
	"twodprof/internal/trace"
)

// soaStream builds a branchy pseudo-random event stream plus its SoA
// form: PCs cluster on a few dozen sites with mildly correlated
// outcomes, which exercises aliasing and history paths.
func soaStream(n int) ([]trace.Event, *trace.SoABatch) {
	r := rng.New(41)
	ev := make([]trace.Event, n)
	pc := trace.PC(0x400000)
	for i := range ev {
		pc = trace.PC(0x400000 + 4*r.Intn(97))
		ev[i] = trace.Event{PC: pc, Taken: r.Bool(0.3 + 0.4*float64(i%2))}
	}
	var b trace.SoABatch
	b.FromEvents(ev)
	return ev, &b
}

// TestApplyBatchSoAMatchesInterface checks that the SoA batch path —
// native for gshare/bimodal, fallback loop for everything else —
// produces exactly the per-event interface results: same hit bits, same
// final predictor state.
func TestApplyBatchSoAMatchesInterface(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			ev, soa := soaStream(5000)

			ref := MustNew(name)
			want := make([]bool, len(ev))
			for i, e := range ev {
				pred := ref.Predict(e.PC)
				ref.Update(e.PC, e.Taken)
				want[i] = pred == e.Taken
			}

			p := MustNew(name)
			hits := make([]uint64, (len(ev)+63)/64)
			// Split the stream at an odd boundary so batch-carried state
			// (history, counters) crosses calls mid-word too.
			const cut = 1997
			ApplyBatchSoA(p, soa.PCs[:cut], soa.Taken, hits)
			var tail trace.SoABatch
			tail.FromEvents(ev[cut:])
			tailHits := make([]uint64, (len(ev)-cut+63)/64)
			ApplyBatchSoA(p, tail.PCs, tail.Taken, tailHits)

			for i := range ev {
				var got bool
				if i < cut {
					got = hits[i>>6]>>uint(i&63)&1 != 0
				} else {
					j := i - cut
					got = tailHits[j>>6]>>uint(j&63)&1 != 0
				}
				if got != want[i] {
					t.Fatalf("event %d: SoA hit %v, interface hit %v", i, got, want[i])
				}
			}
			// Final state must agree too: predictions on fresh PCs match.
			for i := 0; i < 256; i++ {
				pc := trace.PC(0x400000 + 4*i)
				if p.Predict(pc) != ref.Predict(pc) {
					t.Fatalf("final state diverged at pc %#x", pc)
				}
			}
		})
	}
}

// TestPerceptronSoAMidWordSplits drives the perceptron's native SoA
// kernel through batches of 7 events — every batch boundary lands
// mid-word, so the packed-bitmap edge handling and carried history are
// exercised at every offset — and checks bit-identical hits against
// the per-event interface path.
func TestPerceptronSoAMidWordSplits(t *testing.T) {
	ev, _ := soaStream(1000)
	ref := MustNew(NamePerceptron16KB)
	want := make([]bool, len(ev))
	for i, e := range ev {
		pred := ref.Predict(e.PC)
		ref.Update(e.PC, e.Taken)
		want[i] = pred == e.Taken
	}

	p := MustNew(NamePerceptron16KB)
	if _, ok := p.(SoABatchPredictor); !ok {
		t.Fatal("perceptron lost its native SoA batch kernel")
	}
	var b trace.SoABatch
	for start := 0; start < len(ev); start += 7 {
		end := start + 7
		if end > len(ev) {
			end = len(ev)
		}
		b.FromEvents(ev[start:end])
		hits := make([]uint64, (b.Len()+63)/64)
		ApplyBatchSoA(p, b.PCs, b.Taken, hits)
		for j := 0; j < b.Len(); j++ {
			if got := hits[j>>6]>>uint(j&63)&1 != 0; got != want[start+j] {
				t.Fatalf("event %d: SoA hit %v, interface hit %v", start+j, got, want[start+j])
			}
		}
	}
}

// TestUpdateBatchSoAMatchesInterface does the same for the train-only
// path.
func TestUpdateBatchSoAMatchesInterface(t *testing.T) {
	for _, name := range []string{NameGshare4KB, NameBimodal, NamePerceptron16KB} {
		t.Run(name, func(t *testing.T) {
			ev, soa := soaStream(3000)
			ref := MustNew(name)
			for _, e := range ev {
				ref.Update(e.PC, e.Taken)
			}
			p := MustNew(name)
			UpdateBatchSoA(p, soa.PCs, soa.Taken)
			for i := 0; i < 256; i++ {
				pc := trace.PC(0x400000 + 4*i)
				if p.Predict(pc) != ref.Predict(pc) {
					t.Fatalf("final state diverged at pc %#x", pc)
				}
			}
		})
	}
}

// TestCounter2UpdateBranchless pins the branchless counter math to the
// saturating state machine, all 8 (state, outcome) combinations.
func TestCounter2UpdateBranchless(t *testing.T) {
	want := map[[2]int]Counter2{
		{0, 0}: 0, {0, 1}: 1,
		{1, 0}: 0, {1, 1}: 2,
		{2, 0}: 1, {2, 1}: 3,
		{3, 0}: 2, {3, 1}: 3,
	}
	for k, w := range want {
		if got := Counter2(k[0]).Update(k[1] == 1); got != w {
			t.Errorf("Counter2(%d).Update(%v) = %d, want %d", k[0], k[1] == 1, got, w)
		}
	}
}
