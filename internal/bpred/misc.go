package bpred

import (
	"fmt"

	"twodprof/internal/trace"
)

// Static predicts a fixed direction for every branch.
type Static struct {
	Dir bool
}

// Predict implements Predictor.
func (s *Static) Predict(pc trace.PC) bool { return s.Dir }

// Update implements Predictor (no state).
func (s *Static) Update(pc trace.PC, taken bool) {}

// Name implements Predictor.
func (s *Static) Name() string {
	if s.Dir {
		return "always-taken"
	}
	return "always-not-taken"
}

// Reset implements Predictor (no state).
func (s *Static) Reset() {}

// Tournament selects between two component predictors with a PC-indexed
// table of 2-bit chooser counters (Alpha 21264 style selection).
type Tournament struct {
	A, B      Predictor
	indexBits int
	choice    []Counter2 // taken state means "use B"
}

// NewTournament builds a tournament predictor over a and b with
// 2^indexBits chooser counters.
func NewTournament(a, b Predictor, indexBits int) *Tournament {
	if indexBits <= 0 || indexBits > 24 {
		panic(fmt.Sprintf("bpred: invalid tournament index bits %d", indexBits))
	}
	t := &Tournament{A: a, B: b, indexBits: indexBits, choice: make([]Counter2, 1<<uint(indexBits))}
	for i := range t.choice {
		t.choice[i] = WeakNT
	}
	return t
}

func (t *Tournament) index(pc trace.PC) uint64 {
	return uint64(pc) & (uint64(1)<<uint(t.indexBits) - 1)
}

// Predict implements Predictor.
func (t *Tournament) Predict(pc trace.PC) bool {
	if t.choice[t.index(pc)].Taken() {
		return t.B.Predict(pc)
	}
	return t.A.Predict(pc)
}

// Update implements Predictor. The chooser trains toward whichever
// component was correct when they disagree.
func (t *Tournament) Update(pc trace.PC, taken bool) {
	pa := t.A.Predict(pc)
	pb := t.B.Predict(pc)
	if pa != pb {
		i := t.index(pc)
		t.choice[i] = t.choice[i].Update(pb == taken)
	}
	t.A.Update(pc, taken)
	t.B.Update(pc, taken)
}

// Name implements Predictor.
func (t *Tournament) Name() string {
	return fmt.Sprintf("tournament(%s,%s)", t.A.Name(), t.B.Name())
}

// Reset implements Predictor.
func (t *Tournament) Reset() {
	t.A.Reset()
	t.B.Reset()
	for i := range t.choice {
		t.choice[i] = WeakNT
	}
}

// Loop is a specialised loop-exit predictor: it learns the iteration
// count of loop branches and predicts the exit on the final iteration.
// Used as an ablation component (the paper notes gzip's loop branch
// would be easy for "a specialized loop predictor").
type Loop struct {
	indexBits int
	entries   []loopEntry
}

type loopEntry struct {
	trip    uint32 // learned iteration count (taken run length + 1)
	current uint32 // takens seen in the current visit
	conf    uint8  // confidence that trip is stable
}

// NewLoop builds a loop predictor with 2^indexBits entries.
func NewLoop(indexBits int) *Loop {
	if indexBits <= 0 || indexBits > 24 {
		panic(fmt.Sprintf("bpred: invalid loop index bits %d", indexBits))
	}
	return &Loop{indexBits: indexBits, entries: make([]loopEntry, 1<<uint(indexBits))}
}

func (l *Loop) entry(pc trace.PC) *loopEntry {
	return &l.entries[uint64(pc)&(uint64(1)<<uint(l.indexBits)-1)]
}

// Predict implements Predictor: taken while inside the learned trip
// count, not-taken on the predicted final iteration. With no confidence
// it predicts taken (loop back-edges are overwhelmingly taken).
func (l *Loop) Predict(pc trace.PC) bool {
	e := l.entry(pc)
	if e.conf >= 2 && e.trip > 0 && e.current+1 >= e.trip {
		return false
	}
	return true
}

// Update implements Predictor.
func (l *Loop) Update(pc trace.PC, taken bool) {
	e := l.entry(pc)
	if taken {
		e.current++
		return
	}
	observed := e.current + 1
	if observed == e.trip {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.trip = observed
		e.conf = 0
	}
	e.current = 0
}

// Name implements Predictor.
func (l *Loop) Name() string { return fmt.Sprintf("loop-%d", l.indexBits) }

// Reset implements Predictor.
func (l *Loop) Reset() {
	for i := range l.entries {
		l.entries[i] = loopEntry{}
	}
}
