package bpred

import (
	"fmt"

	"twodprof/internal/trace"
)

// Tage is a simplified TAGE predictor (Seznec & Michaud, JILP 2006):
// a bimodal base predictor plus tagged tables indexed with
// geometrically increasing history lengths. The longest-history tagged
// hit provides the prediction; entries are allocated on mispredictions
// and protected by useful counters. This is the post-paper predictor
// generation, included to show 2D-profiling's ground truth is
// predictor-relative (§5.3) even for modern predictors.
type Tage struct {
	base     *Bimodal
	tables   []tageTable
	hist     History
	name     string
	histBits int
}

type tageTable struct {
	histLen   int
	indexBits int
	entries   []tageEntry
}

type tageEntry struct {
	tag    uint16
	ctr    Counter2
	useful uint8
}

// NewTage builds a TAGE with the given tagged-table history lengths
// (ascending) and 2^indexBits entries per table.
func NewTage(indexBits int, histLens []int) *Tage {
	if indexBits <= 0 || indexBits > 20 {
		panic(fmt.Sprintf("bpred: invalid tage index bits %d", indexBits))
	}
	if len(histLens) == 0 {
		panic("bpred: tage needs at least one tagged table")
	}
	maxHist := 0
	for i, h := range histLens {
		if h <= 0 || h > 64 {
			panic(fmt.Sprintf("bpred: invalid tage history length %d", h))
		}
		if i > 0 && h <= histLens[i-1] {
			panic("bpred: tage history lengths must ascend")
		}
		if h > maxHist {
			maxHist = h
		}
	}
	t := &Tage{
		base:     NewBimodal(indexBits),
		hist:     NewHistory(maxHist),
		histBits: maxHist,
		name:     fmt.Sprintf("tage-%dx%d", len(histLens), indexBits),
	}
	for _, h := range histLens {
		t.tables = append(t.tables, tageTable{
			histLen:   h,
			indexBits: indexBits,
			entries:   make([]tageEntry, 1<<uint(indexBits)),
		})
	}
	t.Reset()
	return t
}

// NewTageDefault returns a 4-table TAGE with history lengths 4/8/16/32
// and 1K entries per table.
func NewTageDefault() *Tage { return NewTage(10, []int{4, 8, 16, 32}) }

// fold compresses h's low n bits into width bits by xor-folding.
func fold(h uint64, n, width int) uint64 {
	if n < 64 {
		h &= (1 << uint(n)) - 1
	}
	var out uint64
	for n > 0 {
		out ^= h & ((1 << uint(width)) - 1)
		h >>= uint(width)
		n -= width
	}
	return out
}

func (t *Tage) index(ti int, pc trace.PC) uint64 {
	tb := &t.tables[ti]
	mask := uint64(1)<<uint(tb.indexBits) - 1
	return (uint64(pc) ^ fold(t.hist.Bits(), tb.histLen, tb.indexBits) ^ uint64(ti)*0x9e37) & mask
}

func (t *Tage) tag(ti int, pc trace.PC) uint16 {
	tb := &t.tables[ti]
	return uint16((uint64(pc)>>uint(tb.indexBits) ^ fold(t.hist.Bits(), tb.histLen, 9) ^ uint64(ti)*31) & 0x1ff)
}

// lookup returns the provider table index (-1 = base) and prediction.
func (t *Tage) lookup(pc trace.PC) (int, bool) {
	for ti := len(t.tables) - 1; ti >= 0; ti-- {
		e := &t.tables[ti].entries[t.index(ti, pc)]
		if e.tag == t.tag(ti, pc) {
			return ti, e.ctr.Taken()
		}
	}
	return -1, t.base.Predict(pc)
}

// Predict implements Predictor.
func (t *Tage) Predict(pc trace.PC) bool {
	_, pred := t.lookup(pc)
	return pred
}

// Update implements Predictor.
func (t *Tage) Update(pc trace.PC, taken bool) {
	provider, pred := t.lookup(pc)

	// Train the provider.
	if provider >= 0 {
		e := &t.tables[provider].entries[t.index(provider, pc)]
		e.ctr = e.ctr.Update(taken)
		if pred == taken {
			if e.useful < 3 {
				e.useful++
			}
		} else if e.useful > 0 {
			e.useful--
		}
	} else {
		t.base.Update(pc, taken)
	}

	// On a misprediction, allocate in a longer-history table.
	if pred != taken {
		for ti := provider + 1; ti < len(t.tables); ti++ {
			e := &t.tables[ti].entries[t.index(ti, pc)]
			if e.useful == 0 {
				e.tag = t.tag(ti, pc)
				if taken {
					e.ctr = 2
				} else {
					e.ctr = 1
				}
				break
			}
			// Entry protected: age it so allocation eventually
			// succeeds.
			e.useful--
		}
	}

	if provider >= 0 {
		// The base predictor keeps learning as a fallback.
		t.base.Update(pc, taken)
	}
	t.hist.Push(taken)
}

// Name implements Predictor.
func (t *Tage) Name() string { return t.name }

// Reset implements Predictor.
func (t *Tage) Reset() {
	t.base.Reset()
	for ti := range t.tables {
		for i := range t.tables[ti].entries {
			t.tables[ti].entries[i] = tageEntry{ctr: WeakNT}
		}
	}
	t.hist.Reset()
}
