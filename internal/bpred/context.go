package bpred

import (
	"fmt"
	"sort"

	"twodprof/internal/trace"
)

// Execution-context front-end.
//
// A predictor models one hardware context: one global history register,
// one set of tables. Interleaved multi-thread streams can be aggregated
// two ways, and the choice is a modelling decision, not an
// implementation detail:
//
//   - shared: one table set sees the interleaved update stream, the way
//     an SMT core's shared predictor would. Cross-context updates alias
//     into each other's history and counters.
//   - private: each context gets its own lazily-allocated predictor
//     clone — per-context tables and per-context history — the way
//     per-thread profiling hardware (or simply profiling each thread's
//     stream separately) would behave.
//
// ContextSet is that choice reified: a context-keyed predictor factory
// the engine's sequential front-end drives. Context 0 is pre-resolved
// so the single-context hot path never touches the map.

// AggMode selects how a multi-context stream is aggregated into
// predictor state.
type AggMode uint8

const (
	// AggShared routes every context through one shared predictor.
	AggShared AggMode = iota
	// AggPrivate gives each context a private predictor instance.
	AggPrivate
)

// String implements fmt.Stringer.
func (m AggMode) String() string {
	switch m {
	case AggShared:
		return "shared"
	case AggPrivate:
		return "private"
	default:
		return fmt.Sprintf("AggMode(%d)", uint8(m))
	}
}

// ParseAggMode converts a configuration string ("shared" or "private")
// to an AggMode.
func ParseAggMode(s string) (AggMode, error) {
	switch s {
	case "shared":
		return AggShared, nil
	case "private":
		return AggPrivate, nil
	default:
		return 0, fmt.Errorf("bpred: unknown aggregation mode %q (known: shared, private)", s)
	}
}

// ContextSet constructs and hands out predictor instances keyed by
// execution context under one aggregation mode. In shared mode every
// context resolves to the same instance; in private mode each context
// lazily receives its own power-on clone of the named configuration.
type ContextSet struct {
	name string
	mode AggMode
	p0   Predictor                   // context 0 (and the shared instance)
	rest map[trace.Context]Predictor // private instances for contexts > 0
}

// NewContextSet builds a context-keyed front-end over the named
// predictor configuration. The context-0 instance is allocated eagerly;
// it is also the instance every context shares in AggShared mode.
func NewContextSet(name string, mode AggMode) (*ContextSet, error) {
	if mode != AggShared && mode != AggPrivate {
		return nil, fmt.Errorf("bpred: invalid aggregation mode %d", mode)
	}
	p0, err := New(name)
	if err != nil {
		return nil, err
	}
	return &ContextSet{name: name, mode: mode, p0: p0}, nil
}

// Mode returns the aggregation mode.
func (cs *ContextSet) Mode() AggMode { return cs.mode }

// Name returns the predictor configuration name.
func (cs *ContextSet) Name() string { return cs.name }

// For resolves the predictor instance for ctx, allocating a private
// power-on instance on first sight of a new context in AggPrivate
// mode. It is not safe for concurrent use — the engine's sequential
// front-end is the only caller on the hot path.
func (cs *ContextSet) For(ctx trace.Context) Predictor {
	if ctx == 0 || cs.mode == AggShared {
		return cs.p0
	}
	if p, ok := cs.rest[ctx]; ok {
		return p
	}
	if cs.rest == nil {
		cs.rest = make(map[trace.Context]Predictor)
	}
	p := MustNew(cs.name) // name validated at construction
	cs.rest[ctx] = p
	return p
}

// Contexts returns every context that has resolved a predictor so far,
// sorted ascending. Context 0 is always present.
func (cs *ContextSet) Contexts() []trace.Context {
	out := make([]trace.Context, 0, 1+len(cs.rest))
	out = append(out, 0)
	for ctx := range cs.rest {
		out = append(out, ctx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Reset restores every allocated instance to its power-on state.
func (cs *ContextSet) Reset() {
	cs.p0.Reset()
	for _, p := range cs.rest {
		p.Reset()
	}
}
