package bpred

import "twodprof/internal/trace"

// Batched predictor fast paths.
//
// The Predict/Update interface costs two dynamic dispatches per branch,
// which dominates replay once trace decode is batched. Predictors that
// implement BatchPredictor expose concrete-type loops over whole event
// runs: the per-event work inlines, table/history state stays in
// registers, and the interface boundary is crossed once per batch
// instead of twice per event. The batch methods are exact: feeding a
// stream through them produces bit-identical predictor state and
// outcomes to the one-event-at-a-time interface calls.

// BatchPredictor is implemented by predictors with a devirtualized
// batch path. ApplyBatch and UpdateBatch fall back to per-event
// interface calls for predictors that lack one.
type BatchPredictor interface {
	Predictor
	// PredictUpdateBatch runs the predict-then-train cycle over ev in
	// program order, recording into hits[i] whether ev[i] was predicted
	// correctly. len(hits) must be >= len(ev).
	PredictUpdateBatch(ev []trace.Event, hits []bool)
	// UpdateBatch trains on a run of resolved outcomes in program order
	// without recording predictions (e.g. warming a predictor from a
	// trace prefix).
	UpdateBatch(ev []trace.Event)
}

// ApplyBatch runs the predict-then-train cycle over ev in program
// order, storing per-event correctness into hits. It uses the
// predictor's devirtualized batch path when available.
func ApplyBatch(p Predictor, ev []trace.Event, hits []bool) {
	if bp, ok := p.(BatchPredictor); ok {
		bp.PredictUpdateBatch(ev, hits)
		return
	}
	for i, e := range ev {
		pred := p.Predict(e.PC)
		p.Update(e.PC, e.Taken)
		hits[i] = pred == e.Taken
	}
}

// UpdateBatch trains p on a run of resolved outcomes in program order,
// using the devirtualized path when available.
func UpdateBatch(p Predictor, ev []trace.Event) {
	if bp, ok := p.(BatchPredictor); ok {
		bp.UpdateBatch(ev)
		return
	}
	for _, e := range ev {
		p.Update(e.PC, e.Taken)
	}
}

// --- gshare ---

// PredictUpdateBatch implements BatchPredictor. The loop keeps the
// global history register and the index mask in locals and is branchless
// on event data: the counter moves via ctrUpd's mask arithmetic and the
// taken bit shifts into the history register as a 0/1 integer, so the
// only branch in the loop is the loop condition itself.
func (g *Gshare) PredictUpdateBatch(ev []trace.Event, hits []bool) {
	mask := uint64(1)<<uint(g.indexBits) - 1
	h := g.hist.bits
	hmask := g.hist.mask
	tbl := g.table
	for i, e := range ev {
		t := Counter2(b2u(e.Taken))
		idx := (uint64(e.PC) ^ h) & mask
		c := tbl[idx]
		hits[i] = c>>1 == t
		tbl[idx] = ctrUpd(c, t)
		h = (h<<1 | uint64(t)) & hmask
	}
	g.hist.bits = h
}

// UpdateBatch implements BatchPredictor.
func (g *Gshare) UpdateBatch(ev []trace.Event) {
	mask := uint64(1)<<uint(g.indexBits) - 1
	h := g.hist.bits
	hmask := g.hist.mask
	tbl := g.table
	for _, e := range ev {
		t := Counter2(b2u(e.Taken))
		idx := (uint64(e.PC) ^ h) & mask
		tbl[idx] = ctrUpd(tbl[idx], t)
		h = (h<<1 | uint64(t)) & hmask
	}
	g.hist.bits = h
}

// PredictBatch fills preds[i] with the direction pc[i] would be
// predicted under the current state, without training (all predictions
// share the current global history). len(preds) must be >= len(pcs).
func (g *Gshare) PredictBatch(pcs []trace.PC, preds []bool) {
	mask := uint64(1)<<uint(g.indexBits) - 1
	h := g.hist.bits
	for i, pc := range pcs {
		preds[i] = g.table[(uint64(pc)^h)&mask].Taken()
	}
}

// --- bimodal ---

// PredictUpdateBatch implements BatchPredictor.
func (b *Bimodal) PredictUpdateBatch(ev []trace.Event, hits []bool) {
	mask := uint64(1)<<uint(b.indexBits) - 1
	tbl := b.table
	for i, e := range ev {
		t := Counter2(b2u(e.Taken))
		idx := uint64(e.PC) & mask
		c := tbl[idx]
		hits[i] = c>>1 == t
		tbl[idx] = ctrUpd(c, t)
	}
}

// UpdateBatch implements BatchPredictor.
func (b *Bimodal) UpdateBatch(ev []trace.Event) {
	mask := uint64(1)<<uint(b.indexBits) - 1
	tbl := b.table
	for _, e := range ev {
		idx := uint64(e.PC) & mask
		tbl[idx] = ctrUpd(tbl[idx], Counter2(b2u(e.Taken)))
	}
}

// PredictBatch fills preds[i] with the direction pc[i] would be
// predicted under the current state, without training.
func (b *Bimodal) PredictBatch(pcs []trace.PC, preds []bool) {
	mask := uint64(1)<<uint(b.indexBits) - 1
	for i, pc := range pcs {
		preds[i] = b.table[uint64(pc)&mask].Taken()
	}
}
