package bpred

import "twodprof/internal/trace"

// Struct-of-arrays predictor batch paths.
//
// The AoS batch path (batch.go) already devirtualizes the per-event
// interface calls; the SoA path removes the remaining memory overhead.
// Events arrive as a flat []PC plus a packed taken bitmap (the exact
// shape trace.Chunk.DecodeSoA produces), outcomes leave as a packed hit
// bitmap, and the inner loops touch nothing but those arrays and the
// counter table: per event, one 8-byte PC load, one counter byte
// load/store and pure ALU work — no 16-byte Event structs, no []bool
// hit bytes, no branches on event data.

// SoABatchPredictor is implemented by predictors with a
// struct-of-arrays batch path. taken and hits are packed bitmaps (bit i
// of word i/64 belongs to event i) as built by trace.SoABatch; hits is
// fully overwritten word by word, so callers need not pre-zero it.
type SoABatchPredictor interface {
	Predictor
	// PredictUpdateBatchSoA runs the predict-then-train cycle over the
	// batch in program order, writing per-event correctness into the
	// hits bitmap. len(hits) must be >= (len(pcs)+63)/64; bits past
	// len(pcs) in the last word are unspecified.
	PredictUpdateBatchSoA(pcs []trace.PC, taken, hits []uint64)
	// UpdateBatchSoA trains on the batch without recording predictions.
	UpdateBatchSoA(pcs []trace.PC, taken []uint64)
}

// ApplyBatchSoA runs the predict-then-train cycle over an SoA batch,
// writing per-event correctness into the hits bitmap. Predictors
// without a native SoA path fall through to per-event interface calls
// (bit-identical, just slower).
func ApplyBatchSoA(p Predictor, pcs []trace.PC, taken, hits []uint64) {
	if sp, ok := p.(SoABatchPredictor); ok {
		sp.PredictUpdateBatchSoA(pcs, taken, hits)
		return
	}
	for w := 0; w*64 < len(pcs); w++ {
		tw := taken[w]
		var hw uint64
		n := len(pcs) - w*64
		if n > 64 {
			n = 64
		}
		base := w * 64
		for k := 0; k < n; k++ {
			tk := tw>>uint(k)&1 != 0
			pred := p.Predict(pcs[base+k])
			p.Update(pcs[base+k], tk)
			if pred == tk {
				hw |= 1 << uint(k)
			}
		}
		hits[w] = hw
	}
}

// UpdateBatchSoA trains p on an SoA batch in program order, using the
// native SoA path when available.
func UpdateBatchSoA(p Predictor, pcs []trace.PC, taken []uint64) {
	if sp, ok := p.(SoABatchPredictor); ok {
		sp.UpdateBatchSoA(pcs, taken)
		return
	}
	for i, pc := range pcs {
		p.Update(pc, taken[i>>6]>>uint(i&63)&1 != 0)
	}
}

// --- gshare ---

// PredictUpdateBatchSoA implements SoABatchPredictor. The loop walks
// the batch one 64-event bitmap word at a time, accumulating the word's
// hit bits in a register before a single store; per event it runs the
// same branchless counter/history math as PredictUpdateBatch.
func (g *Gshare) PredictUpdateBatchSoA(pcs []trace.PC, taken, hits []uint64) {
	mask := uint64(1)<<uint(g.indexBits) - 1
	h := g.hist.bits
	hmask := g.hist.mask
	tbl := g.table
	for w := 0; w*64 < len(pcs); w++ {
		tw := taken[w]
		var hw uint64
		n := len(pcs) - w*64
		if n > 64 {
			n = 64
		}
		base := w * 64
		for k := 0; k < n; k++ {
			t := tw >> uint(k) & 1
			idx := (uint64(pcs[base+k]) ^ h) & mask
			c := tbl[idx]
			// hit bit: prediction (counter MSB) XNOR outcome.
			hw |= (uint64(c>>1) ^ t ^ 1) << uint(k)
			tbl[idx] = ctrUpd(c, Counter2(t))
			h = (h<<1 | t) & hmask
		}
		hits[w] = hw
	}
	g.hist.bits = h
}

// UpdateBatchSoA implements SoABatchPredictor.
func (g *Gshare) UpdateBatchSoA(pcs []trace.PC, taken []uint64) {
	mask := uint64(1)<<uint(g.indexBits) - 1
	h := g.hist.bits
	hmask := g.hist.mask
	tbl := g.table
	for i, pc := range pcs {
		t := taken[i>>6] >> uint(i&63) & 1
		idx := (uint64(pc) ^ h) & mask
		tbl[idx] = ctrUpd(tbl[idx], Counter2(t))
		h = (h<<1 | t) & hmask
	}
	g.hist.bits = h
}

// --- bimodal ---

// PredictUpdateBatchSoA implements SoABatchPredictor.
func (b *Bimodal) PredictUpdateBatchSoA(pcs []trace.PC, taken, hits []uint64) {
	mask := uint64(1)<<uint(b.indexBits) - 1
	tbl := b.table
	for w := 0; w*64 < len(pcs); w++ {
		tw := taken[w]
		var hw uint64
		n := len(pcs) - w*64
		if n > 64 {
			n = 64
		}
		base := w * 64
		for k := 0; k < n; k++ {
			t := tw >> uint(k) & 1
			idx := uint64(pcs[base+k]) & mask
			c := tbl[idx]
			hw |= (uint64(c>>1) ^ t ^ 1) << uint(k)
			tbl[idx] = ctrUpd(c, Counter2(t))
		}
		hits[w] = hw
	}
}

// UpdateBatchSoA implements SoABatchPredictor.
func (b *Bimodal) UpdateBatchSoA(pcs []trace.PC, taken []uint64) {
	mask := uint64(1)<<uint(b.indexBits) - 1
	tbl := b.table
	for i, pc := range pcs {
		idx := uint64(pc) & mask
		tbl[idx] = ctrUpd(tbl[idx], Counter2(taken[i>>6]>>uint(i&63)&1))
	}
}
