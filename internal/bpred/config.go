package bpred

import "fmt"

// Known configuration names accepted by New. The two starred entries are
// the configurations the paper evaluates.
const (
	NameGshare4KB       = "gshare-4KB"      // * profiler baseline
	NamePerceptron16KB  = "perceptron-16KB" // * target machine
	NameBimodal         = "bimodal"
	NameGAg             = "gag"
	NamePAg             = "pag"
	NameLoop            = "loop"
	NameAlwaysTaken     = "always-taken"
	NameAlwaysNotTaken  = "always-not-taken"
	NameTournamentSmall = "tournament"
	NameGshareSmall     = "gshare-1KB"
	NameGshareLarge     = "gshare-16KB"
	NameAgree           = "agree"
	NameGskew           = "gskew"
	NameTage            = "tage"
)

// New constructs a predictor by configuration name. It returns an error
// for unknown names so command-line tools can report bad -predictor
// flags cleanly.
func New(name string) (Predictor, error) {
	switch name {
	case NameGshare4KB:
		return NewGshare4KB(), nil
	case NameGshareSmall:
		return NewGshare(12, 12), nil
	case NameGshareLarge:
		return NewGshare(16, 16), nil
	case NamePerceptron16KB:
		return NewPerceptron16KB(), nil
	case NameBimodal:
		return NewBimodal(14), nil
	case NameGAg:
		return NewGAg(14), nil
	case NamePAg:
		return NewPAg(10, 10), nil
	case NameLoop:
		return NewLoop(10), nil
	case NameAlwaysTaken:
		return &Static{Dir: true}, nil
	case NameAlwaysNotTaken:
		return &Static{Dir: false}, nil
	case NameTournamentSmall:
		return NewTournament(NewBimodal(12), NewGshare(12, 12), 12), nil
	case NameAgree:
		return NewAgree(14, 14), nil
	case NameGskew:
		return NewGskew(12, 12), nil
	case NameTage:
		return NewTageDefault(), nil
	default:
		return nil, fmt.Errorf("bpred: unknown predictor %q", name)
	}
}

// Names lists every configuration name accepted by New, in a stable
// order suitable for help text.
func Names() []string {
	return []string{
		NameGshare4KB, NamePerceptron16KB, NameBimodal, NameGAg, NamePAg,
		NameLoop, NameAlwaysTaken, NameAlwaysNotTaken, NameTournamentSmall,
		NameGshareSmall, NameGshareLarge, NameAgree, NameGskew, NameTage,
	}
}

// MustNew is New but panics on error; for use with compile-time-constant
// names in experiments and tests.
func MustNew(name string) Predictor {
	p, err := New(name)
	if err != nil {
		panic(err)
	}
	return p
}
