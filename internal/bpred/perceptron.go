package bpred

import (
	"fmt"

	"twodprof/internal/trace"
)

// Perceptron is Jiménez and Lin's perceptron predictor. The paper's
// target-machine predictor is the 16 KB configuration: 457 entries and a
// 36-bit global history (457 entries × 37 signed 8-bit weights ≈ 16 KB).
type Perceptron struct {
	entries  int
	histBits int
	stride   int    // weights per entry = histBits+1
	weights  []int8 // flat [entries × stride]; weight 0 of a row is the bias
	hist     History
	theta    int32
	name     string
}

// NewPerceptron builds a perceptron predictor with the given table size
// and history length. The training threshold follows the original paper:
// theta = floor(1.93*h + 14). The weight table is one flat int8 array —
// a row is stride consecutive bytes, so the dot product and training
// loops walk contiguous cache lines instead of chasing a per-entry
// slice header.
func NewPerceptron(entries, histBits int) *Perceptron {
	if entries <= 0 || histBits <= 0 || histBits > 63 {
		panic(fmt.Sprintf("bpred: invalid perceptron config %d/%d", entries, histBits))
	}
	p := &Perceptron{
		entries:  entries,
		histBits: histBits,
		stride:   histBits + 1,
		hist:     NewHistory(histBits),
		theta:    int32(1.93*float64(histBits) + 14),
		name:     fmt.Sprintf("perceptron-%dKB", entries*(histBits+1)/1024),
	}
	p.weights = make([]int8, entries*p.stride)
	return p
}

// NewPerceptron16KB returns the paper's 16 KB target predictor
// (457 entries, 36-bit history).
func NewPerceptron16KB() *Perceptron { return NewPerceptron(457, 36) }

func (p *Perceptron) row(pc trace.PC) []int8 {
	i := int(uint64(pc)%uint64(p.entries)) * p.stride
	return p.weights[i : i+p.stride : i+p.stride]
}

// output computes the perceptron dot product for pc under the current
// history. The history contribution is branchless: bit i maps to the
// bipolar input x = 2*bit-1 ∈ {-1, +1} and the term is x*w.
func (p *Perceptron) output(pc trace.PC) int32 {
	w := p.row(pc)
	h := p.hist.bits
	y := int32(w[0])
	for i := 0; i < p.histBits; i++ {
		x := int32(h>>uint(i)&1)<<1 - 1
		y += x * int32(w[i+1])
	}
	return y
}

// Predict implements Predictor.
func (p *Perceptron) Predict(pc trace.PC) bool { return p.output(pc) >= 0 }

// Update implements Predictor. Training follows the original rule: adjust
// weights when the prediction was wrong or |y| <= theta. The threshold
// test is inherently a branch (training is conditional in the hardware
// too); the weight adjustment loop under it is branchless — t and x are
// bipolar ±1 values computed by shift/mask.
func (p *Perceptron) Update(pc trace.PC, taken bool) {
	y := p.output(pc)
	if (y >= 0) != taken || abs32(y) <= p.theta {
		p.train(pc, taken)
	}
	p.hist.Push(taken)
}

// train adjusts pc's weight row toward the outcome under the current
// (pre-push) history. The conditional threshold test stays in the
// callers; the adjustment loop itself is branchless.
func (p *Perceptron) train(pc trace.PC, taken bool) {
	w := p.row(pc)
	h := p.hist.bits
	t := int8(b2u(taken))<<1 - 1
	w[0] = satAdd8(w[0], t)
	for i := 0; i < p.histBits; i++ {
		x := int8(h>>uint(i)&1)<<1 - 1
		w[i+1] = satAdd8(w[i+1], t*x)
	}
}

// PredictUpdateBatch implements BatchPredictor. Unlike the naive
// Predict-then-Update composition it computes the dot product once per
// event and reuses it for both the prediction and the training
// threshold — bit-identical, since Update's own output() call would see
// unchanged state.
func (p *Perceptron) PredictUpdateBatch(ev []trace.Event, hits []bool) {
	for i, e := range ev {
		y := p.output(e.PC)
		pred := y >= 0
		if pred != e.Taken || abs32(y) <= p.theta {
			p.train(e.PC, e.Taken)
		}
		p.hist.Push(e.Taken)
		hits[i] = pred == e.Taken
	}
}

// UpdateBatch implements BatchPredictor.
func (p *Perceptron) UpdateBatch(ev []trace.Event) {
	for _, e := range ev {
		p.Update(e.PC, e.Taken)
	}
}

// PredictUpdateBatchSoA implements SoABatchPredictor: the perceptron's
// native SoA batch kernel (the last predictor that still took the
// per-event fallback in batch mode). It walks the batch one 64-event
// bitmap word at a time, accumulating hit bits in a register, with one
// dot product per event shared between prediction and the training
// threshold.
func (p *Perceptron) PredictUpdateBatchSoA(pcs []trace.PC, taken, hits []uint64) {
	for w := 0; w*64 < len(pcs); w++ {
		tw := taken[w]
		var hw uint64
		n := len(pcs) - w*64
		if n > 64 {
			n = 64
		}
		base := w * 64
		for k := 0; k < n; k++ {
			tk := tw>>uint(k)&1 != 0
			pc := pcs[base+k]
			y := p.output(pc)
			pred := y >= 0
			if pred != tk || abs32(y) <= p.theta {
				p.train(pc, tk)
			}
			p.hist.Push(tk)
			if pred == tk {
				hw |= 1 << uint(k)
			}
		}
		hits[w] = hw
	}
}

// UpdateBatchSoA implements SoABatchPredictor.
func (p *Perceptron) UpdateBatchSoA(pcs []trace.PC, taken []uint64) {
	for i, pc := range pcs {
		tk := taken[i>>6]>>uint(i&63)&1 != 0
		y := p.output(pc)
		if (y >= 0) != tk || abs32(y) <= p.theta {
			p.train(pc, tk)
		}
		p.hist.Push(tk)
	}
}

// Name implements Predictor.
func (p *Perceptron) Name() string { return p.name }

// Reset implements Predictor.
func (p *Perceptron) Reset() {
	for i := range p.weights {
		p.weights[i] = 0
	}
	p.hist.Reset()
}

func abs32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}

// satAdd8 adds two int8 values with saturation at the int8 range, which
// models the hardware's saturating weight counters.
func satAdd8(a, b int8) int8 {
	s := int16(a) + int16(b)
	switch {
	case s > 127:
		return 127
	case s < -128:
		return -128
	default:
		return int8(s)
	}
}
