package bpred

import (
	"testing"
	"testing/quick"

	"twodprof/internal/rng"
	"twodprof/internal/trace"
)

func TestCounter2(t *testing.T) {
	c := WeakNT
	if c.Taken() {
		t.Fatal("weak-NT predicts taken")
	}
	c = c.Update(true) // 2
	if !c.Taken() {
		t.Fatal("counter did not move to taken")
	}
	c = c.Update(true).Update(true).Update(true) // saturate at 3
	if c != 3 {
		t.Fatalf("counter = %d, want saturated 3", c)
	}
	c = c.Update(false).Update(false).Update(false).Update(false)
	if c != 0 {
		t.Fatalf("counter = %d, want saturated 0", c)
	}
	if c.Update(false) != 0 {
		t.Fatal("counter went below 0")
	}
}

func TestHistory(t *testing.T) {
	h := NewHistory(4)
	for _, b := range []bool{true, false, true, true} {
		h.Push(b)
	}
	if h.Bits() != 0b1011 {
		t.Fatalf("Bits = %b", h.Bits())
	}
	if !h.Bit(0) || !h.Bit(1) || h.Bit(2) || !h.Bit(3) {
		t.Fatal("Bit accessor wrong")
	}
	h.Push(true) // oldest bit falls off the 4-bit register
	if h.Bits() != 0b0111 {
		t.Fatalf("after overflow Bits = %b", h.Bits())
	}
	h.Reset()
	if h.Bits() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestHistoryPanics(t *testing.T) {
	for _, n := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistory(%d) did not panic", n)
				}
			}()
			NewHistory(n)
		}()
	}
	NewHistory(64) // must be accepted
}

// measureBiased trains p on a Bernoulli(taken=bias) branch and returns
// accuracy over the post-warmup window.
func measureBiased(p Predictor, bias float64, n int) float64 {
	r := rng.New(99)
	pc := trace.PC(0x1234)
	correct, total := 0, 0
	for i := 0; i < n; i++ {
		taken := r.Bool(bias)
		pred := p.Predict(pc)
		p.Update(pc, taken)
		if i >= n/10 { // skip warmup
			total++
			if pred == taken {
				correct++
			}
		}
	}
	return float64(correct) / float64(total)
}

func TestPredictorsLearnBias(t *testing.T) {
	for _, name := range []string{NameGshare4KB, NameBimodal, NamePerceptron16KB, NamePAg, NameGAg, NameTournamentSmall} {
		p := MustNew(name)
		if acc := measureBiased(p, 0.95, 20000); acc < 0.90 {
			t.Errorf("%s accuracy %.3f on 95%%-biased branch, want >= 0.90", name, acc)
		}
	}
}

// measurePattern runs a strict repeating pattern through p.
func measurePattern(p Predictor, pattern []bool, n int) float64 {
	pc := trace.PC(0x4444)
	correct, total := 0, 0
	for i := 0; i < n; i++ {
		taken := pattern[i%len(pattern)]
		pred := p.Predict(pc)
		p.Update(pc, taken)
		if i >= n/10 {
			total++
			if pred == taken {
				correct++
			}
		}
	}
	return float64(correct) / float64(total)
}

func TestGshareLearnsPattern(t *testing.T) {
	// A deterministic period-6 pattern is fully visible in a 14-bit
	// history; gshare should approach 100%.
	pattern := []bool{true, true, false, true, false, false}
	if acc := measurePattern(NewGshare4KB(), pattern, 20000); acc < 0.99 {
		t.Fatalf("gshare pattern accuracy %.3f, want >= 0.99", acc)
	}
	// Bimodal cannot: it converges to the majority direction.
	if acc := measurePattern(NewBimodal(14), pattern, 20000); acc > 0.80 {
		t.Fatalf("bimodal pattern accuracy %.3f, expected below 0.80", acc)
	}
}

func TestPerceptronLearnsLinearCorrelation(t *testing.T) {
	// Outcome equals the outcome 20 branches ago XOR 8 % noise. The
	// noise keeps the stream aperiodic, so gshare's 14-bit contexts
	// are effectively random and untrainable, while the perceptron
	// only needs one strong weight on history bit 20 (within its
	// 36-bit reach).
	p := NewPerceptron16KB()
	g := NewGshare4KB()
	var hist []bool
	r := rng.New(7)
	pc := trace.PC(0x999)
	accP, accG, total := 0, 0, 0
	const n = 60000
	for i := 0; i < n; i++ {
		var taken bool
		if len(hist) >= 20 {
			taken = hist[len(hist)-20] != r.Bool(0.08)
		} else {
			taken = r.Bool(0.5)
		}
		if p.Predict(pc) == taken && i > n/5 {
			accP++
		}
		if g.Predict(pc) == taken && i > n/5 {
			accG++
		}
		if i > n/5 {
			total++
		}
		p.Update(pc, taken)
		g.Update(pc, taken)
		hist = append(hist, taken)
	}
	pAcc := float64(accP) / float64(total)
	gAcc := float64(accG) / float64(total)
	if pAcc < 0.85 {
		t.Fatalf("perceptron accuracy %.3f on noisy 20-back correlation, want >= 0.85", pAcc)
	}
	if pAcc <= gAcc+0.1 {
		t.Fatalf("perceptron (%.3f) should clearly beat gshare (%.3f) on long correlation", pAcc, gAcc)
	}
}

func TestLoopPredictorLearnsTripCount(t *testing.T) {
	l := NewLoop(10)
	pc := trace.PC(0x77)
	const trips = 37 // far beyond any history register
	correct, total := 0, 0
	for visit := 0; visit < 300; visit++ {
		for i := 0; i < trips; i++ {
			taken := i < trips-1
			pred := l.Predict(pc)
			l.Update(pc, taken)
			if visit >= 10 {
				total++
				if pred == taken {
					correct++
				}
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.999 {
		t.Fatalf("loop predictor accuracy %.4f on fixed trip count, want ~1", acc)
	}
}

func TestStatic(t *testing.T) {
	at := &Static{Dir: true}
	if !at.Predict(1) || at.Name() != "always-taken" {
		t.Fatal("always-taken wrong")
	}
	ant := &Static{Dir: false}
	if ant.Predict(1) || ant.Name() != "always-not-taken" {
		t.Fatal("always-not-taken wrong")
	}
	at.Update(1, false) // no-op
	at.Reset()
}

func TestTournamentPicksBetterComponent(t *testing.T) {
	// On a pattern branch, gshare is right and bimodal is wrong; the
	// tournament should track gshare closely.
	tour := NewTournament(NewBimodal(12), NewGshare(12, 12), 12)
	pattern := []bool{true, false, true, true, false, false}
	if acc := measurePattern(tour, pattern, 30000); acc < 0.95 {
		t.Fatalf("tournament accuracy %.3f, want >= 0.95", acc)
	}
}

func TestReset(t *testing.T) {
	for _, name := range Names() {
		p := MustNew(name)
		// Train, reset, and check the first predictions match a fresh
		// instance (state fully cleared).
		r := rng.New(5)
		for i := 0; i < 5000; i++ {
			pc := trace.PC(r.Intn(64))
			taken := r.Bool(0.7)
			p.Predict(pc)
			p.Update(pc, taken)
		}
		p.Reset()
		fresh := MustNew(name)
		for i := 0; i < 200; i++ {
			pc := trace.PC(i)
			if p.Predict(pc) != fresh.Predict(pc) {
				t.Errorf("%s: state not fully reset at pc %d", name, i)
				break
			}
		}
	}
}

func TestConfigNames(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p == nil {
			t.Fatalf("New(%q) returned nil", name)
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("New(bogus) did not error")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(bogus) did not panic")
		}
	}()
	MustNew("bogus")
}

func TestSatAdd8(t *testing.T) {
	cases := []struct{ a, b, want int8 }{
		{127, 1, 127},
		{-128, -1, -128},
		{100, 27, 127},
		{-100, -28, -128},
		{10, -20, -10},
	}
	for _, c := range cases {
		if got := satAdd8(c.a, c.b); got != c.want {
			t.Errorf("satAdd8(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	f := func(a, b int8) bool {
		got := int16(satAdd8(a, b))
		sum := int16(a) + int16(b)
		if sum > 127 {
			sum = 127
		}
		if sum < -128 {
			sum = -128
		}
		return got == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccounting(t *testing.T) {
	acct := NewAccounting(&Static{Dir: true})
	acct.Branch(1, true)
	acct.Branch(1, false)
	acct.Branch(2, true)
	if acct.Total.Exec != 3 || acct.Total.Correct != 2 {
		t.Fatalf("total %+v", acct.Total)
	}
	s := acct.Site(1)
	if s.Exec != 2 || s.Correct != 1 || s.Accuracy() != 50 {
		t.Fatalf("site 1 %+v", s)
	}
	if acct.Site(99).Exec != 0 {
		t.Fatal("unknown site not zero")
	}
	pcs := acct.PCs()
	if len(pcs) != 2 || pcs[0] != 1 || pcs[1] != 2 {
		t.Fatalf("PCs = %v", pcs)
	}
	if s := acct.Site(2); s.MispredictRate() != 0 {
		t.Fatalf("mispredict rate %v", s.MispredictRate())
	}
	if (SiteStats{}).Accuracy() != 0 {
		t.Fatal("empty site accuracy not 0")
	}
}

func TestMeasureResetsPredictor(t *testing.T) {
	var rec trace.Recorder
	for i := 0; i < 100; i++ {
		rec.Branch(5, true)
	}
	p := NewBimodal(10)
	a1 := Measure(&rec, p)
	a2 := Measure(&rec, p) // must reset: identical result
	if a1.Total.Correct != a2.Total.Correct {
		t.Fatalf("Measure not reproducible: %d vs %d", a1.Total.Correct, a2.Total.Correct)
	}
}

func TestGshareName(t *testing.T) {
	if got := NewGshare4KB().Name(); got != "gshare-4KB" {
		t.Fatalf("Name = %q", got)
	}
	if got := NewPerceptron16KB().Name(); got != "perceptron-16KB" {
		t.Fatalf("Name = %q", got)
	}
}
