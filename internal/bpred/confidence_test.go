package bpred

import (
	"testing"

	"twodprof/internal/rng"
	"twodprof/internal/trace"
)

func TestConfidenceSeparatesEasyFromHard(t *testing.T) {
	g := NewGshare4KB()
	c := NewConfidence(12, 8)
	r := rng.New(3)
	easy, hard := trace.PC(0x100), trace.PC(0x204)

	confidentEasy, confidentHard, samples := 0, 0, 0
	const n = 60000
	for i := 0; i < n; i++ {
		for _, pc := range []trace.PC{easy, hard} {
			var taken bool
			if pc == easy {
				taken = r.Bool(0.99)
			} else {
				taken = r.Bool(0.5)
			}
			pred := g.Predict(pc)
			g.Update(pc, taken)
			conf := c.Confident(pc)
			c.Update(pc, pred == taken, taken)
			if i > n/5 {
				if pc == easy {
					samples++
					if conf {
						confidentEasy++
					}
				} else if conf {
					confidentHard++
				}
			}
		}
	}
	easyRate := float64(confidentEasy) / float64(samples)
	hardRate := float64(confidentHard) / float64(samples)
	if easyRate < 0.85 {
		t.Fatalf("easy branch confident only %.3f of the time", easyRate)
	}
	if hardRate > 0.5*easyRate {
		t.Fatalf("hard branch confidence %.3f too close to easy %.3f", hardRate, easyRate)
	}
}

func TestConfidenceResets(t *testing.T) {
	c := NewConfidence(8, 4)
	pc := trace.PC(5)
	// All-not-taken outcomes keep the internal history (and hence the
	// table index) stable, making the counter's lifecycle observable.
	for i := 0; i < 10; i++ {
		c.Update(pc, true, false)
	}
	if !c.Confident(pc) {
		t.Fatal("not confident after a correct streak")
	}
	c.Update(pc, false, false)
	if c.Confident(pc) {
		t.Fatal("still confident right after a misprediction")
	}
	c.Reset()
	if c.Confident(pc) {
		t.Fatal("confident after Reset")
	}
}

func TestConfidenceValidation(t *testing.T) {
	for i, f := range []func(){
		func() { NewConfidence(0, 4) },
		func() { NewConfidence(8, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
