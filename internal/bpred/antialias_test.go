package bpred

import (
	"testing"

	"twodprof/internal/rng"
	"twodprof/internal/trace"
)

func TestAgreeLearnsBias(t *testing.T) {
	// Agree must handle both taken-biased and not-taken-biased
	// branches; the bias bit latches the first outcome.
	for _, bias := range []float64{0.95, 0.05} {
		a := NewAgree(14, 14)
		if acc := measureBiased(a, bias, 20000); acc < 0.90 {
			t.Errorf("agree accuracy %.3f on bias %.2f", acc, bias)
		}
	}
}

func TestAgreeAliasingResistance(t *testing.T) {
	// Two branches with opposite strong biases that share gshare
	// counter indices interfere destructively under gshare but agree
	// predictors convert both to "agree" — aliasing is harmless.
	// 512 branches with pseudo-random bias directions share a 64-entry
	// table: every counter serves ~8 branches with mixed directions.
	const nBranches = 512
	dirs := make([]bool, nBranches)
	rd := rng.New(17)
	for i := range dirs {
		dirs[i] = rd.Bool(0.5)
	}
	run := func(p Predictor) float64 {
		r := rng.New(3)
		correct, total := 0, 0
		const n = 200000
		for i := 0; i < n; i++ {
			j := i % nBranches
			pc := trace.PC(j)
			taken := r.Bool(0.97) == dirs[j]
			pred := p.Predict(pc)
			p.Update(pc, taken)
			if i > n/5 {
				total++
				if pred == taken {
					correct++
				}
			}
		}
		return float64(correct) / float64(total)
	}
	// A tiny 64-entry table with minimal history guarantees that
	// opposite-biased branches share counters.
	agreeAcc := run(NewAgree(6, 1))
	gshareAcc := run(NewGshare(6, 1))
	if agreeAcc <= gshareAcc {
		t.Fatalf("agree (%.3f) should beat small gshare (%.3f) under opposing-bias aliasing",
			agreeAcc, gshareAcc)
	}
	if agreeAcc < 0.9 {
		t.Fatalf("agree accuracy %.3f too low under aliasing", agreeAcc)
	}
}

func TestGskewLearnsBiasAndPattern(t *testing.T) {
	g := NewGskew(12, 12)
	if acc := measureBiased(g, 0.95, 20000); acc < 0.90 {
		t.Fatalf("gskew biased accuracy %.3f", acc)
	}
	g2 := NewGskew(12, 12)
	pattern := []bool{true, true, false, true, false, false}
	if acc := measurePattern(g2, pattern, 20000); acc < 0.98 {
		t.Fatalf("gskew pattern accuracy %.3f", acc)
	}
}

func TestGskewMajorityOutvotesOneBank(t *testing.T) {
	g := NewGskew(10, 10)
	// Corrupt bank 0 completely; majority must still predict right
	// after training banks 1 and 2.
	pc := trace.PC(0x123)
	for i := 0; i < 1000; i++ {
		g.Update(pc, true)
	}
	for i := 0; i < 1<<uint(g.bankBits); i++ {
		g.banks[i] = 0 // strongly not-taken everywhere in bank 0
	}
	if !g.Predict(pc) {
		t.Fatal("majority vote lost to a single corrupted bank")
	}
}

func TestAntialiasReset(t *testing.T) {
	for _, name := range []string{NameAgree, NameGskew} {
		p := MustNew(name)
		r := rng.New(9)
		for i := 0; i < 2000; i++ {
			pc := trace.PC(r.Intn(64))
			p.Predict(pc)
			p.Update(pc, r.Bool(0.5))
		}
		p.Reset()
		fresh := MustNew(name)
		for i := 0; i < 100; i++ {
			if p.Predict(trace.PC(i)) != fresh.Predict(trace.PC(i)) {
				t.Errorf("%s not fully reset", name)
				break
			}
		}
	}
}

func TestAntialiasNames(t *testing.T) {
	if NewAgree(14, 14).Name() != "agree-14" {
		t.Fatal("agree name")
	}
	if NewGskew(12, 12).Name() != "gskew-12" {
		t.Fatal("gskew name")
	}
}

func TestTageLearnsBiasAndPattern(t *testing.T) {
	tg := NewTageDefault()
	if acc := measureBiased(tg, 0.95, 20000); acc < 0.90 {
		t.Fatalf("tage biased accuracy %.3f", acc)
	}
	tg2 := NewTageDefault()
	pattern := []bool{true, true, false, true, false, false}
	if acc := measurePattern(tg2, pattern, 30000); acc < 0.98 {
		t.Fatalf("tage pattern accuracy %.3f", acc)
	}
}

func TestTageLongHistoryBeatsGshare(t *testing.T) {
	// Construct a period-60 pattern whose 14-bit windows are
	// genuinely ambiguous but whose 32-bit windows are not: two
	// copies of a random 30-bit block with the last bit of the second
	// copy flipped. The 14 outcomes before positions 29 and 59 are
	// identical, yet the continuations differ, so any 14-bit-history
	// predictor is stuck guessing there; TAGE's 32-bit table reaches
	// back past the previous flip and disambiguates.
	r := rng.New(5)
	block := make([]bool, 30)
	for i := range block {
		block[i] = r.Bool(0.5)
	}
	pattern := append(append([]bool{}, block...), block...)
	pattern[59] = !pattern[59]

	tage := measurePattern(NewTageDefault(), pattern, 120000)
	gshare := measurePattern(NewGshare4KB(), pattern, 120000)
	if tage < 0.98 {
		t.Fatalf("tage ambiguous-pattern accuracy %.3f", tage)
	}
	if tage <= gshare+0.005 {
		t.Fatalf("tage (%.4f) should clearly beat gshare (%.4f) on the ambiguous pattern", tage, gshare)
	}
}

func TestTageConfigValidation(t *testing.T) {
	cases := []func(){
		func() { NewTage(0, []int{4}) },
		func() { NewTage(10, nil) },
		func() { NewTage(10, []int{8, 4}) },
		func() { NewTage(10, []int{0}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
