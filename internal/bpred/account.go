package bpred

import (
	"sort"

	"twodprof/internal/trace"
)

// SiteStats holds per-static-branch prediction accounting.
type SiteStats struct {
	Exec    int64 // dynamic executions
	Correct int64 // correct predictions
}

// Accuracy returns the prediction accuracy in percent (0-100), or 0 when
// the site never executed.
func (s SiteStats) Accuracy() float64 {
	if s.Exec == 0 {
		return 0
	}
	return 100 * float64(s.Correct) / float64(s.Exec)
}

// MispredictRate returns 100 - Accuracy for executed sites, 0 otherwise.
func (s SiteStats) MispredictRate() float64 {
	if s.Exec == 0 {
		return 0
	}
	return 100 - s.Accuracy()
}

// Accounting drives a predictor over a branch stream (as a trace.Sink)
// and accumulates global and per-site accuracy. This is the measurement
// substrate both for ground-truth input-dependence classification and
// for the aggregate-profiling baseline.
type Accounting struct {
	Pred  Predictor
	Sites map[trace.PC]*SiteStats
	Total SiteStats
}

// NewAccounting wraps p in a fresh accounting sink.
func NewAccounting(p Predictor) *Accounting {
	return &Accounting{Pred: p, Sites: make(map[trace.PC]*SiteStats)}
}

// Branch implements trace.Sink: predict, score, train.
func (a *Accounting) Branch(pc trace.PC, taken bool) {
	pred := a.Pred.Predict(pc)
	a.Pred.Update(pc, taken)
	s := a.Sites[pc]
	if s == nil {
		s = &SiteStats{}
		a.Sites[pc] = s
	}
	s.Exec++
	a.Total.Exec++
	if pred == taken {
		s.Correct++
		a.Total.Correct++
	}
}

// Site returns the stats for one site (zero value if never seen).
func (a *Accounting) Site(pc trace.PC) SiteStats {
	if s := a.Sites[pc]; s != nil {
		return *s
	}
	return SiteStats{}
}

// PCs returns all observed sites sorted by PC.
func (a *Accounting) PCs() []trace.PC {
	out := make([]trace.PC, 0, len(a.Sites))
	for pc := range a.Sites {
		out = append(out, pc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Measure runs src through a fresh accounting of p and returns the
// accounting. The predictor is reset first.
func Measure(src trace.Source, p Predictor) *Accounting {
	p.Reset()
	acc := NewAccounting(p)
	src.Run(acc)
	return acc
}
