package bpred

import (
	"fmt"

	"twodprof/internal/trace"
)

// Confidence is a JRS-style branch confidence estimator (Jacobsen,
// Rotenberg, Smith — MICRO 1996): a table of resetting counters indexed
// like gshare. A counter increments on every correct prediction and resets
// on a misprediction; a branch is "confident" when its counter has
// reached the threshold. Wish-branch hardware consults exactly this
// kind of estimator to decide between branch and predicate mode.
type Confidence struct {
	indexBits int
	threshold uint8
	table     []uint8
	hist      History
}

// NewConfidence builds an estimator with 2^indexBits resetting counters
// saturating at max and reporting confident at threshold.
func NewConfidence(indexBits int, threshold uint8) *Confidence {
	if indexBits <= 0 || indexBits > 24 {
		panic(fmt.Sprintf("bpred: invalid confidence index bits %d", indexBits))
	}
	if threshold == 0 {
		panic("bpred: confidence threshold must be positive")
	}
	c := &Confidence{
		indexBits: indexBits,
		threshold: threshold,
		table:     make([]uint8, 1<<uint(indexBits)),
		hist:      NewHistory(indexBits),
	}
	return c
}

func (c *Confidence) index(pc trace.PC) uint64 {
	mask := uint64(1)<<uint(c.indexBits) - 1
	return (uint64(pc) ^ c.hist.Bits()) & mask
}

// Confident reports whether the estimator currently trusts the
// predictor for the branch at pc.
func (c *Confidence) Confident(pc trace.PC) bool {
	return c.table[c.index(pc)] >= c.threshold
}

// Update trains the estimator with whether the prediction was correct
// and the resolved direction (for its internal history).
func (c *Confidence) Update(pc trace.PC, correct, taken bool) {
	i := c.index(pc)
	if correct {
		if c.table[i] < 255 {
			c.table[i]++
		}
	} else {
		c.table[i] = 0
	}
	c.hist.Push(taken)
}

// Reset restores the power-on (unconfident) state.
func (c *Confidence) Reset() {
	for i := range c.table {
		c.table[i] = 0
	}
	c.hist.Reset()
}
