# Tier-1 verification and tooling for the twodprof repository.
#
#   make verify          build + lint + tests + race-mode concurrency tests
#   make lint            go vet + gofmt -l check
#   make test            go test ./...
#   make race            race-detector pass over the concurrent subsystems
#   make fuzz-seeds      run the fuzz corpora as regular regression tests
#   make e2e-crash       kill-9 crash-recovery drill against the durable daemon
#   make e2e-cluster     kill-9 node-failure drill + 10k-session load storm through the router
#   make bench-engine    old-vs-new guard for the internal/engine core (results/BENCH_engine.json)
#   make bench-hotpath   per-layer hot-path guard: decode / predict / e2e kernels (results/BENCH_hotpath.json)
#   make bench-wire      binary-protocol vs HTTP+gzip ingest guard (results/BENCH_wire.json)
#   make bench-parallel  record engine/profiler benchmarks in results/BENCH_parallel.json
#   make bench-serve     record ingest throughput scaling in results/BENCH_serve.json
#   make bench-replay    record trace replay throughput in results/BENCH_replay.json
#   make results         regenerate the committed results/ directory

GO ?= go

.PHONY: all build vet lint test race fuzz-seeds e2e-crash e2e-cluster verify bench-engine bench-hotpath bench-wire bench-parallel bench-serve bench-replay results

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint = vet + formatting drift + the asmcheck gate over the embedded
# kernels (tools/asmcheckall: zero diagnostics, every branch
# classified). gofmt -l prints offending files; a non-empty listing
# fails the target. When the shadow vettool or staticcheck is
# installed it runs too; absence is not an error (the container may
# not ship them).
lint: vet
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; \
	fi
	@if command -v shadow >/dev/null 2>&1; then \
		$(GO) vet -vettool=$$(command -v shadow) ./...; \
	fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	fi
	$(GO) run ./tools/asmcheckall

test:
	$(GO) test ./...

# The concurrent subsystems (the memoising oracle runner, the parallel
# experiment engine, the parallel trace-replay pipeline and the online
# profiling service) under the race detector. -short skips the full
# experiment matrix, which is covered race-free by `make test`; the
# concurrency tests themselves (TestRunnerConcurrent,
# TestRunManyParallelMatchesSerial, TestIngestHammer,
# TestParallelReplayHammer, ...) all run in -short mode.
race:
	$(GO) test -race -short ./internal/oracle ./internal/exp ./internal/core ./internal/engine ./internal/serve ./internal/trace ./internal/replay ./internal/wire ./internal/cluster

# Fuzz targets run their seed corpora as plain tests — a cheap
# regression net over the decoders and analyses without a fuzzing
# session.
fuzz-seeds:
	$(GO) test -run 'Fuzz' ./internal/trace ./internal/vm ./internal/asmcheck ./internal/wal ./internal/wire

# The crash-recovery drill re-execs the serve test binary as a durable
# daemon, kills it with SIGKILL (mid-stream and post-completion) and
# asserts the restarted daemon serves byte-identical reports from the
# session WAL.
e2e-crash:
	$(GO) test -run 'TestCrashRecovery' -count=1 ./internal/serve

# The cluster resilience drill: SIGKILL one of three node processes
# while sessions stream through the router (only the dead node's
# sessions fail, mark-down within the heartbeat budget), then a
# 10k-concurrent-session storm through a freshly spawned multi-process
# cluster asserting routed reports byte-identical to a single node and
# a flat router heap.
e2e-cluster:
	$(GO) test -run 'TestKillNodeMidStream' -count=1 ./internal/cluster
	$(GO) run ./cmd/loadgen -selftest -sessions 10000

verify: build lint test race fuzz-seeds e2e-crash e2e-cluster bench-engine bench-hotpath bench-wire

# bench-engine is part of `make verify`: it re-measures the unified
# sharded core against the plain sequential profiler and fails on a
# throughput regression or a report mismatch.
bench-engine:
	$(GO) run ./tools/benchengine -o results/BENCH_engine.json

# bench-hotpath is part of `make verify`: it pins each hot-path layer
# (8-wide BTR2 decode, SoA predictor kernels, end-to-end SoA replay)
# against its per-event fallback in the same process and fails if a
# kernel regresses below its floor or the SoA replay report diverges.
bench-hotpath:
	$(GO) run ./tools/benchhotpath -o results/BENCH_hotpath.json

# bench-wire is part of `make verify`: it measures binary-protocol
# ingest against HTTP (plain and gzip) into the same server and fails
# if the wire transport drops below its floor against HTTP+gzip or any
# transport's report diverges.
bench-wire:
	$(GO) run ./tools/benchwire -o results/BENCH_wire.json

bench-parallel:
	$(GO) run ./tools/benchpar -o results/BENCH_parallel.json

bench-serve:
	$(GO) run ./tools/benchserve -o results/BENCH_serve.json

bench-replay:
	$(GO) run ./tools/benchreplay -o results/BENCH_replay.json

results:
	$(GO) run ./cmd/experiments -run all -workers 8 -o results
