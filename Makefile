# Tier-1 verification and tooling for the twodprof repository.
#
#   make verify          build + vet + tests + race-mode concurrency tests
#   make test            go test ./...
#   make race            race-detector pass over the concurrent subsystems
#   make bench-parallel  record engine/profiler benchmarks in results/BENCH_parallel.json
#   make results         regenerate the committed results/ directory

GO ?= go

.PHONY: all build vet test race verify bench-parallel results

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrent subsystems (the memoising oracle runner and the parallel
# experiment engine) under the race detector. -short skips the full
# experiment matrix, which is covered race-free by `make test`; the
# concurrency tests themselves (TestRunnerConcurrent,
# TestRunManyParallelMatchesSerial, ...) all run in -short mode.
race:
	$(GO) test -race -short ./internal/oracle ./internal/exp ./internal/core

verify: build vet test race

bench-parallel:
	$(GO) run ./tools/benchpar -o results/BENCH_parallel.json

results:
	$(GO) run ./cmd/experiments -run all -j 8 -o results
