// Command benchpar measures the parallel experiment engine against the
// serial one (plus the profiler hot-path micro-benchmarks) and records
// the numbers as JSON, so the repository keeps a machine-readable
// before/after artifact next to the rendered results.
//
// Usage:
//
//	go run ./tools/benchpar -o results/BENCH_parallel.json [-benchtime 2x]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed `go test -bench` line.
type Result struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iterations"`
	NsPerOp  float64 `json:"ns_per_op"`
	BytesOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsOp int64   `json:"allocs_per_op,omitempty"`
}

// File is the BENCH_parallel.json schema.
type File struct {
	Date        string   `json:"date"`
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	NumCPU      int      `json:"num_cpu"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	Note        string   `json:"note"`
	SpeedupLine string   `json:"runall_speedup"`
	Benchmarks  []Result `json:"benchmarks"`
}

var lineRE = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("o", "results/BENCH_parallel.json", "output file")
	benchtime := flag.String("benchtime", "2x", "go test -benchtime value")
	flag.Parse()

	pattern := "BenchmarkRunAllSerial$|BenchmarkRunAllParallel$|BenchmarkEndSliceSparse$|BenchmarkProfilerReset$"
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
		"-benchtime", *benchtime, "-count", "1", ".")
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchpar: go test: %v\n%s", err, raw)
		os.Exit(1)
	}

	f := File{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "RunAll benches run the deterministic engine subset with cold caches per iteration; " +
			"the parallel/serial ratio is bounded by num_cpu, so a single-core runner shows ~1x.",
	}
	byName := map[string]Result{}
	for _, line := range strings.Split(string(raw), "\n") {
		m := lineRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := Result{Name: m[1]}
		r.Iters, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.BytesOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			r.AllocsOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		f.Benchmarks = append(f.Benchmarks, r)
		byName[r.Name] = r
	}
	if len(f.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchpar: no benchmark lines parsed from:\n%s", raw)
		os.Exit(1)
	}
	if s, p := byName["BenchmarkRunAllSerial"], byName["BenchmarkRunAllParallel"]; s.NsPerOp > 0 && p.NsPerOp > 0 {
		f.SpeedupLine = fmt.Sprintf("%.2fx (serial %.2fs/op vs parallel %.2fs/op on %d CPUs)",
			s.NsPerOp/p.NsPerOp, s.NsPerOp/1e9, p.NsPerOp/1e9, f.NumCPU)
	}

	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchpar:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchpar:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(f.Benchmarks))
}
