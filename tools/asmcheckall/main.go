// Command asmcheckall is the lint gate over the bundled benchmark
// kernels: it runs the full asmcheck pipeline on every kernel and
// exits non-zero if any diagnostic is produced or any conditional
// branch is left unclassified. `make lint` (and therefore `make
// verify`) runs it, so a kernel edit that introduces dead code, an
// unreachable region or a structural defect fails the build.
package main

import (
	"fmt"
	"os"

	"twodprof/internal/asmcheck"
	"twodprof/internal/progs"
	"twodprof/internal/vm"
)

func main() {
	bad := false
	for _, name := range progs.KernelNames() {
		k, _ := progs.KernelByName(name)
		res, err := asmcheck.Run(k.Prog)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asmcheckall: %s: %v\n", name, err)
			bad = true
			continue
		}
		if len(res.Diags) > 0 {
			fmt.Fprintf(os.Stderr, "asmcheckall: %s has %d diagnostics:\n", name, len(res.Diags))
			for _, d := range res.Diags {
				fmt.Fprintf(os.Stderr, "  %s\n", d)
			}
			bad = true
		}
		for _, i := range vm.StaticBranches(k.Prog) {
			v, ok := res.Verdict(i)
			if !ok || v.Class == asmcheck.ClassUnknown {
				fmt.Fprintf(os.Stderr, "asmcheckall: %s: branch #%d not classified\n", name, i)
				bad = true
			}
		}
	}
	if bad {
		os.Exit(1)
	}
	fmt.Printf("asmcheckall: %d kernels clean\n", len(progs.KernelNames()))
}
