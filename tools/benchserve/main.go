// Command benchserve measures the online profiling service's ingest
// throughput at several shard counts and records the numbers as JSON,
// so the repository keeps a machine-readable scaling artifact for the
// serving layer next to the engine benchmarks.
//
// Two workloads are streamed, each under both metrics:
//
//   - a VM kernel trace (few static sites, dense hot loop) — the
//     regime the paper's benchmarks live in;
//   - a wide synthetic population (tens of thousands of static sites)
//     where the sharded statistics stage does real per-event work.
//
// The accuracy metric keeps a sequential gshare front-end (global
// history cannot be sharded), so its scaling is Amdahl-bounded by the
// front-end; the bias metric has no predictor and shows the fan-out's
// scaling headroom directly.
//
// For each (workload, metric, shards) cell it boots a profiled server
// on a loopback listener, streams the pre-encoded BTR1 trace at it
// over real HTTP, and reports events/second for the best of -iters
// runs.
//
// Usage:
//
//	go run ./tools/benchserve -o results/BENCH_serve.json [-iters 3]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"time"

	"twodprof/internal/progs"
	"twodprof/internal/serve"
	"twodprof/internal/synth"
	"twodprof/internal/trace"
)

// Run is the measured outcome at one shard count.
type Run struct {
	Shards       int     `json:"shards"`
	Iters        int     `json:"iters"`
	BestSeconds  float64 `json:"best_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	SpeedupVs1   float64 `json:"speedup_vs_1_shard"`
}

// WorkloadResult groups the shard sweep for one (workload, metric)
// pair.
type WorkloadResult struct {
	Workload   string `json:"workload"`
	Metric     string `json:"metric"`
	Events     int64  `json:"events"`
	TraceBytes int    `json:"trace_bytes"`
	Runs       []Run  `json:"runs"`
}

// File is the BENCH_serve.json schema.
type File struct {
	Date       string           `json:"date"`
	GoVersion  string           `json:"go_version"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	NumCPU     int              `json:"num_cpu"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Note       string           `json:"note"`
	Workloads  []WorkloadResult `json:"workloads"`
}

// syntheticSites/syntheticEvents size the wide-footprint workload: far
// more static sites than any VM kernel, so per-event statistics work
// (map lookups over a cache-hostile footprint) dominates ingest.
const (
	syntheticSites  = 20000
	syntheticEvents = 6_000_000
)

func main() {
	out := flag.String("o", "results/BENCH_serve.json", "output file")
	kernel := flag.String("kernel", "bsearch", "VM kernel whose trace is streamed")
	input := flag.String("input", "train", "kernel input set")
	iters := flag.Int("iters", 3, "ingest repetitions per cell (best is kept)")
	flag.Parse()

	kernelRaw, kernelEvents := kernelTrace(*kernel, *input)
	kernelName := *kernel + "/" + *input
	fmt.Printf("trace %s: %d events, %d bytes\n", kernelName, kernelEvents, len(kernelRaw))
	wideRaw, wideEvents := wideTrace()
	wideName := fmt.Sprintf("synthetic-wide (%d sites)", syntheticSites)
	fmt.Printf("trace %s: %d events, %d bytes\n", wideName, wideEvents, len(wideRaw))

	f := File{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "End-to-end HTTP ingest (decode + sequential front-end + sharded statistics " +
			"workers) on a loopback listener. The accuracy metric's gshare front-end is " +
			"sequential by construction (global history needs the full interleaved stream), " +
			"so its scaling is Amdahl-bounded; the bias metric has no predictor and shows " +
			"the shard fan-out's headroom. Kernel traces have a handful of static sites, " +
			"so their statistics stage is nearly free; the wide synthetic population is " +
			"where sharding pays. Shard speedup is bounded by num_cpu: on a single-core " +
			"runner the sweep measures fan-out overhead (~1x, occasionally below from " +
			"scheduler churn), not parallel scaling.",
	}

	type cell struct {
		name   string
		metric string
		raw    []byte
		events int64
	}
	cells := []cell{
		{kernelName, "accuracy", kernelRaw, kernelEvents},
		{kernelName, "bias", kernelRaw, kernelEvents},
		{wideName, "accuracy", wideRaw, wideEvents},
		{wideName, "bias", wideRaw, wideEvents},
	}
	for _, c := range cells {
		wr := WorkloadResult{
			Workload:   c.name,
			Metric:     c.metric,
			Events:     c.events,
			TraceBytes: len(c.raw),
		}
		for _, shards := range []int{1, 4, 8} {
			best := time.Duration(1<<63 - 1)
			for i := 0; i < *iters; i++ {
				d, err := ingestOnce(c.raw, shards, c.metric)
				if err != nil {
					fail(err)
				}
				if d < best {
					best = d
				}
			}
			r := Run{
				Shards:       shards,
				Iters:        *iters,
				BestSeconds:  best.Seconds(),
				EventsPerSec: float64(c.events) / best.Seconds(),
			}
			if len(wr.Runs) > 0 {
				r.SpeedupVs1 = wr.Runs[0].BestSeconds / r.BestSeconds
			} else {
				r.SpeedupVs1 = 1
			}
			wr.Runs = append(wr.Runs, r)
			fmt.Printf("%s metric=%s shards=%d: best %.3fs, %.1fM events/s (%.2fx vs 1 shard)\n",
				c.name, c.metric, shards, r.BestSeconds, r.EventsPerSec/1e6, r.SpeedupVs1)
		}
		f.Workloads = append(f.Workloads, wr)
	}

	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// kernelTrace encodes one VM kernel run as an in-memory BTR1 stream.
func kernelTrace(kernel, input string) ([]byte, int64) {
	inst, err := progs.StandardInput(kernel, input)
	if err != nil {
		fail(err)
	}
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		fail(err)
	}
	events := inst.Run(w)
	if err := w.Close(); err != nil {
		fail(err)
	}
	return buf.Bytes(), events
}

// wideTrace encodes a synthetic branch stream with a wide static
// footprint, exercising the per-shard statistics maps for real.
func wideTrace() ([]byte, int64) {
	cfg := synth.DefaultPopulationConfig("bench-wide", 0x5eed)
	cfg.NumSites = syntheticSites
	cfg.DynTarget = syntheticEvents
	wl := synth.NewPopulation(cfg).Workload("train")
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		fail(err)
	}
	events := wl.Run(w)
	if err := w.Close(); err != nil {
		fail(err)
	}
	return buf.Bytes(), events
}

// ingestOnce boots a fresh server with the given shard count, streams
// the trace once and returns the wall-clock ingest time.
func ingestOnce(raw []byte, shards int, metric string) (time.Duration, error) {
	cfg := serve.DefaultConfig()
	cfg.Addr = "127.0.0.1:0"
	cfg.Shards = shards
	srv, err := serve.NewServer(cfg)
	if err != nil {
		return 0, err
	}
	if _, err := srv.Start(); err != nil {
		return 0, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	url := "http://" + srv.Addr() + "/v1/ingest?metric=" + metric
	t0 := time.Now()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	elapsed := time.Since(t0)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("ingest at %d shards: status %d: %s", shards, resp.StatusCode, body)
	}
	return elapsed, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchserve:", err)
	os.Exit(1)
}
