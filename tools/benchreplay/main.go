// Command benchreplay measures trace-replay throughput — sequential
// BTR1 against parallel BTR2 at several worker counts — and records the
// numbers as JSON, so the repository keeps a machine-readable artifact
// for the replay pipeline next to the engine and serving benchmarks.
//
// Two workloads are replayed, each under both metrics:
//
//   - a VM kernel trace (few static sites, dense hot loop) — the
//     regime the paper's benchmarks live in;
//   - a wide synthetic population (tens of thousands of static sites)
//     where the per-event statistics stage does real work.
//
// The bias metric parallelises end to end (parallel chunk decode into
// PC-sharded profilers), so it is where the ≥2x multi-core target
// lives; the accuracy metric keeps a sequential batched predictor
// front-end (global history needs the full interleaved stream), so
// only its decode overlaps and the speedup is Amdahl-bounded.
//
// Usage:
//
//	go run ./tools/benchreplay -o results/BENCH_replay.json [-iters 3]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"twodprof/internal/core"
	"twodprof/internal/progs"
	"twodprof/internal/replay"
	"twodprof/internal/synth"
	"twodprof/internal/trace"
)

// Run is the measured outcome of one (format, workers) cell.
type Run struct {
	Format       string  `json:"format"`
	Workers      int     `json:"workers"`
	ChunkEvents  int     `json:"chunk_events,omitempty"`
	Iters        int     `json:"iters"`
	BestSeconds  float64 `json:"best_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	SpeedupVsSeq float64 `json:"speedup_vs_sequential_btr1"`
}

// WorkloadResult groups the sweep for one (workload, metric) pair.
type WorkloadResult struct {
	Workload  string `json:"workload"`
	Metric    string `json:"metric"`
	Events    int64  `json:"events"`
	BTR1Bytes int    `json:"btr1_bytes"`
	BTR2Bytes int    `json:"btr2_bytes"`
	Runs      []Run  `json:"runs"`
}

// File is the BENCH_replay.json schema.
type File struct {
	Date       string           `json:"date"`
	GoVersion  string           `json:"go_version"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	NumCPU     int              `json:"num_cpu"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Note       string           `json:"note"`
	Workloads  []WorkloadResult `json:"workloads"`
}

// syntheticSites/syntheticEvents size the wide-footprint workload the
// same way benchserve does, so the artifacts are comparable.
const (
	syntheticSites  = 20000
	syntheticEvents = 6_000_000
)

func main() {
	out := flag.String("o", "results/BENCH_replay.json", "output file")
	kernel := flag.String("kernel", "bsearch", "VM kernel whose trace is replayed")
	input := flag.String("input", "train", "kernel input set")
	chunk := flag.Int("chunk", 0, "BTR2 events per chunk (0 = default)")
	iters := flag.Int("iters", 3, "replay repetitions per cell (best is kept)")
	flag.Parse()

	chunkEvents := *chunk
	if chunkEvents <= 0 {
		chunkEvents = trace.DefaultChunkEvents
	}

	kernelEvents, kernelB1, kernelB2 := kernelTraces(*kernel, *input, chunkEvents)
	kernelName := *kernel + "/" + *input
	fmt.Printf("trace %s: %d events, btr1 %d bytes, btr2 %d bytes\n",
		kernelName, kernelEvents, len(kernelB1), len(kernelB2))
	wideEvents, wideB1, wideB2 := wideTraces(chunkEvents)
	wideName := fmt.Sprintf("synthetic-wide (%d sites)", syntheticSites)
	fmt.Printf("trace %s: %d events, btr1 %d bytes, btr2 %d bytes\n",
		wideName, wideEvents, len(wideB1), len(wideB2))

	f := File{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "Offline replay throughput: sequential BTR1 baseline vs parallel BTR2 " +
			"(bounded decode pool; for the bias metric also PC-sharded profilers, for " +
			"the accuracy metric a sequential batched gshare front-end, since global " +
			"history needs the full interleaved stream). All parallel cells produce " +
			"reports byte-identical to the sequential baseline. Speedup is bounded by " +
			"num_cpu: the >=2x bias target applies when GOMAXPROCS >= 4; on a " +
			"single-core runner the sweep measures pipeline overhead (~1x), not " +
			"parallel scaling.",
	}
	if runtime.GOMAXPROCS(0) < 4 {
		fmt.Printf("note: GOMAXPROCS=%d < 4; the >=2x bias speedup target does not apply on this host\n",
			runtime.GOMAXPROCS(0))
	}

	type cell struct {
		name   string
		metric core.Metric
		b1, b2 []byte
		events int64
	}
	cells := []cell{
		{kernelName, core.MetricAccuracy, kernelB1, kernelB2, kernelEvents},
		{kernelName, core.MetricBias, kernelB1, kernelB2, kernelEvents},
		{wideName, core.MetricAccuracy, wideB1, wideB2, wideEvents},
		{wideName, core.MetricBias, wideB1, wideB2, wideEvents},
	}
	for _, c := range cells {
		wr := WorkloadResult{
			Workload:  c.name,
			Metric:    c.metric.String(),
			Events:    c.events,
			BTR1Bytes: len(c.b1),
			BTR2Bytes: len(c.b2),
		}
		type variant struct {
			format  string
			raw     []byte
			workers int
		}
		variants := []variant{
			{"btr1", c.b1, 1},
			{"btr2", c.b2, 1},
			{"btr2", c.b2, 2},
			{"btr2", c.b2, 4},
			{"btr2", c.b2, 8},
		}
		for _, v := range variants {
			best := time.Duration(1<<63 - 1)
			for i := 0; i < *iters; i++ {
				d, err := replayOnce(v.raw, c.metric, v.workers)
				if err != nil {
					fail(err)
				}
				if d < best {
					best = d
				}
			}
			r := Run{
				Format:       v.format,
				Workers:      v.workers,
				Iters:        *iters,
				BestSeconds:  best.Seconds(),
				EventsPerSec: float64(c.events) / best.Seconds(),
			}
			if v.format == "btr2" {
				r.ChunkEvents = chunkEvents
			}
			if len(wr.Runs) > 0 {
				r.SpeedupVsSeq = wr.Runs[0].BestSeconds / r.BestSeconds
			} else {
				r.SpeedupVsSeq = 1
			}
			wr.Runs = append(wr.Runs, r)
			fmt.Printf("%s metric=%s %s workers=%d: best %.3fs, %.1fM events/s (%.2fx vs sequential btr1)\n",
				c.name, c.metric, v.format, v.workers, r.BestSeconds, r.EventsPerSec/1e6, r.SpeedupVsSeq)
		}
		f.Workloads = append(f.Workloads, wr)
	}

	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// replayOnce profiles one in-memory trace and returns the wall-clock
// time.
func replayOnce(raw []byte, metric core.Metric, workers int) (time.Duration, error) {
	cfg := core.DefaultConfig()
	cfg.Metric = metric
	t0 := time.Now()
	if _, err := replay.Profile(bytes.NewReader(raw), cfg, "gshare-4KB", replay.Options{Workers: workers}); err != nil {
		return 0, err
	}
	return time.Since(t0), nil
}

// encodeBoth records one source into parallel BTR1 and BTR2 streams.
func encodeBoth(src trace.Source, chunkEvents int) (int64, []byte, []byte) {
	rec := trace.NewRecorder(0)
	events := src.Run(rec)

	var b1 bytes.Buffer
	w1, err := trace.NewWriter(&b1)
	if err != nil {
		fail(err)
	}
	w1.BranchBatch(rec.Events)
	if err := w1.Close(); err != nil {
		fail(err)
	}

	var b2 bytes.Buffer
	w2, err := trace.NewBTR2Writer(&b2, trace.BTR2Options{ChunkEvents: chunkEvents})
	if err != nil {
		fail(err)
	}
	w2.BranchBatch(rec.Events)
	if err := w2.Close(); err != nil {
		fail(err)
	}
	return events, b1.Bytes(), b2.Bytes()
}

// kernelTraces encodes one VM kernel run in both formats.
func kernelTraces(kernel, input string, chunkEvents int) (int64, []byte, []byte) {
	inst, err := progs.StandardInput(kernel, input)
	if err != nil {
		fail(err)
	}
	return encodeBoth(inst, chunkEvents)
}

// wideTraces encodes a synthetic branch stream with a wide static
// footprint in both formats.
func wideTraces(chunkEvents int) (int64, []byte, []byte) {
	cfg := synth.DefaultPopulationConfig("bench-wide", 0x5eed)
	cfg.NumSites = syntheticSites
	cfg.DynTarget = syntheticEvents
	return encodeBoth(synth.NewPopulation(cfg).Workload("train"), chunkEvents)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchreplay:", err)
	os.Exit(1)
}
