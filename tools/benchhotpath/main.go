// Command benchhotpath guards the hot-path overhaul per layer: it
// measures the three stages of the ingest pipeline in isolation —
// BTR2 chunk decode (8-wide batch varint kernel), predictor batch
// update (struct-of-arrays tables), and end-to-end replay ingest —
// and records the numbers as JSON.
//
// Where benchengine compares whole adapter paths against the
// pre-engine primitive, this tool pins each layer against its own
// scalar/per-event fallback on the same machine, so a regression in
// one kernel is visible even when another layer's win masks it in the
// end-to-end number. Floors are same-process ratios (SoA vs fallback),
// which stay meaningful on loaded CI runners where absolute wall-clock
// does not.
//
// Every cell runs a discarded warm-up pass (buffer growth and record
// creation are session setup, not steady state) and then keeps the
// best of -iters timed repetitions.
//
// Usage:
//
//	go run ./tools/benchhotpath -o results/BENCH_hotpath.json [-iters 5]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"twodprof/internal/bpred"
	"twodprof/internal/core"
	"twodprof/internal/engine"
	"twodprof/internal/progs"
	"twodprof/internal/trace"
)

// Run is one measured cell.
type Run struct {
	Layer         string  `json:"layer"` // decode | predict | e2e
	Path          string  `json:"path"`
	Iters         int     `json:"iters"`
	BestSeconds   float64 `json:"best_seconds"`
	EventsPerSec  float64 `json:"events_per_sec"`
	RatioVsBase   float64 `json:"ratio_vs_baseline,omitempty"`
	FloorApplied  float64 `json:"floor_applied,omitempty"`
	FloorOK       bool    `json:"floor_ok"`
	FloorExempt   bool    `json:"floor_exempt,omitempty"`
	ReportMatches *bool   `json:"report_matches_baseline,omitempty"`
}

// File is the BENCH_hotpath.json schema.
type File struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workload   string `json:"workload"`
	Events     int64  `json:"events"`
	Note       string `json:"note"`
	Runs       []Run  `json:"runs"`
}

var (
	iters  = flag.Int("iters", 5, "timed repetitions per cell (best is kept)")
	warmup = flag.Int("warmup", 1, "discarded warm-up passes per cell")
)

func main() {
	out := flag.String("o", "results/BENCH_hotpath.json", "output file")
	kernel := flag.String("kernel", "fsm", "VM kernel whose trace drives the sweep")
	input := flag.String("input", "train", "kernel input set")
	minDecode := flag.Float64("min-decode", 0.9, "floor for the 8-wide SoA decode, as a fraction of the AoS decode over the same chunks")
	minPredict := flag.Float64("min-predict", 1.2, "floor for the SoA predictor batch kernel vs the per-event interface loop")
	minE2E := flag.Float64("min-e2e", 1.0, "floor for SoA end-to-end replay vs the per-event Branch path")
	flag.Parse()

	inst, err := progs.StandardInput(*kernel, *input)
	if err != nil {
		fail(err)
	}
	rec := trace.NewRecorder(0)
	events := inst.Run(rec)

	var b2 bytes.Buffer
	w2, err := trace.NewBTR2Writer(&b2, trace.BTR2Options{})
	if err != nil {
		fail(err)
	}
	w2.BranchBatch(rec.Events)
	if err := w2.Close(); err != nil {
		fail(err)
	}

	f := File{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workload:   *kernel + "/" + *input,
		Events:     events,
		Note: "per-layer hot-path guard: BTR2 8-wide batch varint decode, SoA " +
			"predictor batch kernels, and end-to-end SoA replay, each against its " +
			"own per-event fallback in the same process. Ratios are same-machine " +
			"and survive CI noise; the floors catch a kernel silently falling back " +
			"to the scalar path.",
	}

	ok := true
	record := func(r Run) {
		if !r.FloorOK || (r.ReportMatches != nil && !*r.ReportMatches) {
			ok = false
		}
		f.Runs = append(f.Runs, r)
		status := "ok"
		if r.FloorExempt {
			status = "baseline"
		} else if !r.FloorOK {
			status = fmt.Sprintf("REGRESSION (floor %.2f)", r.FloorApplied)
		}
		if r.ReportMatches != nil && !*r.ReportMatches {
			status += " REPORT-MISMATCH"
		}
		ratio := ""
		if r.RatioVsBase != 0 {
			ratio = fmt.Sprintf(" (%.2fx vs baseline)", r.RatioVsBase)
		}
		fmt.Printf("%-7s %-22s best %.3fs, %6.1fM events/s%s %s\n",
			r.Layer, r.Path, r.BestSeconds, r.EventsPerSec/1e6, ratio, status)
	}

	benchDecode(b2.Bytes(), events, *minDecode, record)
	benchPredict(rec.Events, *minPredict, record)
	benchE2E(b2.Bytes(), events, *minE2E, record)

	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", *out)
	if !ok {
		fail(fmt.Errorf("hot-path floor or report-identity violated (see %s)", *out))
	}
}

// bestOf runs fn warmup+iters times and returns the best timed pass.
func bestOf(fn func()) time.Duration {
	for i := 0; i < *warmup; i++ {
		fn()
	}
	best := time.Duration(1<<63 - 1)
	for i := 0; i < *iters; i++ {
		t0 := time.Now()
		fn()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}

// benchDecode measures chunk-body decode alone: the same pre-read BTR2
// chunks through the per-event AoS decoder (baseline) and the 8-wide
// SoA kernel.
func benchDecode(raw []byte, events int64, floor float64, record func(Run)) {
	r, err := trace.NewBTR2Reader(bytes.NewReader(raw))
	if err != nil {
		fail(err)
	}
	var chunks []*trace.Chunk
	for {
		c, err := r.NextChunk()
		if err == io.EOF {
			break
		}
		if err != nil {
			fail(err)
		}
		chunks = append(chunks, c)
	}

	var evs []trace.Event
	var sinkN int
	aos := bestOf(func() {
		for _, c := range chunks {
			evs, err = c.Decode(evs[:0])
			if err != nil {
				fail(err)
			}
			sinkN += len(evs)
		}
	})
	record(Run{
		Layer: "decode", Path: "aos-per-event", Iters: *iters,
		BestSeconds:  aos.Seconds(),
		EventsPerSec: float64(events) / aos.Seconds(),
		FloorOK:      true, FloorExempt: true,
	})

	var soa trace.SoABatch
	soaBest := bestOf(func() {
		for _, c := range chunks {
			if err := c.DecodeSoA(&soa); err != nil {
				fail(err)
			}
			sinkN += soa.Len()
		}
	})
	ratio := aos.Seconds() / soaBest.Seconds()
	record(Run{
		Layer: "decode", Path: "soa-8wide", Iters: *iters,
		BestSeconds:  soaBest.Seconds(),
		EventsPerSec: float64(events) / soaBest.Seconds(),
		RatioVsBase:  ratio, FloorApplied: floor, FloorOK: ratio >= floor,
	})
	_ = sinkN
}

// benchPredict measures the predictor layer alone: the per-event
// interface loop (baseline), the AoS batch path, and the SoA kernel,
// all on a fresh gshare per pass so table state is comparable.
func benchPredict(events []trace.Event, floor float64, record func(Run)) {
	var soa trace.SoABatch
	soa.FromEvents(events)
	n := int64(len(events))

	var sinkN int
	iface := bestOf(func() {
		p := bpred.MustNew(bpred.NameGshare4KB)
		for _, e := range events {
			if p.Predict(e.PC) == e.Taken {
				sinkN++
			}
			p.Update(e.PC, e.Taken)
		}
	})
	record(Run{
		Layer: "predict", Path: "interface-per-event", Iters: *iters,
		BestSeconds:  iface.Seconds(),
		EventsPerSec: float64(n) / iface.Seconds(),
		FloorOK:      true, FloorExempt: true,
	})

	hits := make([]bool, len(events))
	aos := bestOf(func() {
		p := bpred.MustNew(bpred.NameGshare4KB)
		bpred.ApplyBatch(p, events, hits)
	})
	ratioAoS := iface.Seconds() / aos.Seconds()
	record(Run{
		Layer: "predict", Path: "batch-aos", Iters: *iters,
		BestSeconds:  aos.Seconds(),
		EventsPerSec: float64(n) / aos.Seconds(),
		RatioVsBase:  ratioAoS, FloorOK: true, FloorExempt: true,
	})

	hitWords := make([]uint64, (len(events)+63)/64)
	soaBest := bestOf(func() {
		p := bpred.MustNew(bpred.NameGshare4KB)
		bpred.ApplyBatchSoA(p, soa.PCs, soa.Taken, hitWords)
	})
	ratio := iface.Seconds() / soaBest.Seconds()
	record(Run{
		Layer: "predict", Path: "batch-soa", Iters: *iters,
		BestSeconds:  soaBest.Seconds(),
		EventsPerSec: float64(n) / soaBest.Seconds(),
		RatioVsBase:  ratio, FloorApplied: floor, FloorOK: ratio >= floor,
	})
}

// benchE2E measures whole-pipeline ingest: the per-event Branch path
// (baseline — decode to []Event, one engine.Branch call per event)
// against the SoA replay fast path (ProfileStream, which flows
// decode→predict→profile in struct-of-arrays form). Both report
// byte-identically; the SoA cell checks that too.
func benchE2E(raw []byte, events int64, floor float64, record func(Run)) {
	for _, metric := range []core.Metric{core.MetricAccuracy, core.MetricBias} {
		cfg := core.DefaultConfig()
		cfg.Metric = metric
		opts := engine.Options{Workers: 1}
		if metric == core.MetricAccuracy {
			opts.Predictor = bpred.NameGshare4KB
		}

		var wantJSON []byte
		perEvent := bestOf(func() {
			eng, err := engine.New(cfg, opts)
			if err != nil {
				fail(err)
			}
			rd, err := trace.NewBTR2Reader(bytes.NewReader(raw))
			if err != nil {
				fail(err)
			}
			var evs [4096]trace.Event
			for {
				n, err := rd.ReadBatch(evs[:])
				for _, e := range evs[:n] {
					eng.Branch(e.PC, e.Taken)
				}
				if err == io.EOF {
					break
				}
				if err != nil {
					fail(err)
				}
			}
			rep, err := eng.Finish()
			if err != nil {
				fail(err)
			}
			if wantJSON == nil {
				if wantJSON, err = json.Marshal(rep); err != nil {
					fail(err)
				}
			}
		})
		record(Run{
			Layer: "e2e", Path: metric.String() + "/branch-per-event", Iters: *iters,
			BestSeconds:  perEvent.Seconds(),
			EventsPerSec: float64(events) / perEvent.Seconds(),
			FloorOK:      true, FloorExempt: true,
		})

		var gotJSON []byte
		soaBest := bestOf(func() {
			rep, err := engine.ProfileStream(bytes.NewReader(raw), cfg, opts)
			if err != nil {
				fail(err)
			}
			if gotJSON, err = json.Marshal(rep); err != nil {
				fail(err)
			}
		})
		ratio := perEvent.Seconds() / soaBest.Seconds()
		matches := bytes.Equal(wantJSON, gotJSON)
		record(Run{
			Layer: "e2e", Path: metric.String() + "/soa-replay", Iters: *iters,
			BestSeconds:  soaBest.Seconds(),
			EventsPerSec: float64(events) / soaBest.Seconds(),
			RatioVsBase:  ratio, FloorApplied: floor, FloorOK: ratio >= floor,
			ReportMatches: &matches,
		})
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchhotpath:", err)
	os.Exit(1)
}
