// Command benchwire guards the binary wire protocol's reason to
// exist: it measures session ingest throughput into one profiled
// server over each transport — HTTP with a plain BTR1 body, HTTP with
// the gzip-wrapped body a bandwidth-conscious client would send, and
// the length-prefixed binary protocol over raw TCP — and records the
// numbers as JSON.
//
// Every cell streams the same kernel trace end to end (encode
// included, since each transport pays its own encoding) and must
// produce a /v1/report byte-identical to the plain-HTTP cell's. The
// wire cells must clear a throughput floor relative to HTTP+gzip (see
// -min-wire): lenient on purpose — wall-clock on a loaded runner is
// noisy — but enough to catch the protocol regressing into something
// slower than the transport it was built to beat.
//
// Usage:
//
//	go run ./tools/benchwire -o results/BENCH_wire.json [-iters 3]
package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"time"

	"twodprof/internal/progs"
	"twodprof/internal/serve"
	"twodprof/internal/trace"
	"twodprof/internal/wire"
)

// Run is one measured transport cell.
type Run struct {
	Path            string  `json:"path"` // http-btr1 | http-btr1-gzip | wire | wire-shared-conn
	Iters           int     `json:"iters"`
	BestSeconds     float64 `json:"best_seconds"`
	EventsPerSec    float64 `json:"events_per_sec"`
	WireBytes       int64   `json:"wire_bytes,omitempty"` // payload bytes on the wire per session
	RatioVsHTTPGzip float64 `json:"ratio_vs_http_gzip"`
	FloorApplied    float64 `json:"floor_applied,omitempty"`
	FloorOK         bool    `json:"floor_ok"`
	FloorExempt     bool    `json:"floor_exempt,omitempty"`
	ReportMatches   bool    `json:"report_matches_http"`
}

// File is the BENCH_wire.json schema.
type File struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workload   string `json:"workload"`
	Events     int64  `json:"events"`
	Note       string `json:"note"`
	Runs       []Run  `json:"runs"`
}

func main() {
	out := flag.String("o", "results/BENCH_wire.json", "output file")
	kernel := flag.String("kernel", "fsm", "VM kernel whose trace drives the cells")
	input := flag.String("input", "train", "kernel input set")
	iters := flag.Int("iters", 3, "repetitions per cell (best is kept)")
	minWire := flag.Float64("min-wire", 0.9, "throughput floor for the wire cells, as a fraction of HTTP+gzip")
	flag.Parse()

	inst, err := progs.StandardInput(*kernel, *input)
	if err != nil {
		fail(err)
	}
	rec := trace.NewRecorder(0)
	events := inst.Run(rec)

	cfg := serve.DefaultConfig()
	cfg.Addr = "127.0.0.1:0"
	cfg.WireAddr = "127.0.0.1:0"
	cfg.Shards = runtime.GOMAXPROCS(0)
	cfg.MaxSessions = 4 * (*iters) * 4 // every cell's sessions stay queryable
	srv, err := serve.NewServer(cfg)
	if err != nil {
		fail(err)
	}
	if _, err := srv.Start(); err != nil {
		fail(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	f := File{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workload:   *kernel + "/" + *input,
		Events:     events,
		Note: "binary wire protocol guard: one profiled server, same kernel stream " +
			"end to end per transport, encode included. wire = one session per fresh " +
			"TCP conn; wire-shared-conn = sessions multiplexed over one persistent " +
			"conn (the cluster relay's shape). Reports are byte-identical across " +
			"cells. The floor is against HTTP+gzip and deliberately lenient; it " +
			"catches the protocol regressing below the transport it replaces, not " +
			"micro-variance.",
	}

	var seq int
	sid := func(path string) string {
		seq++
		return fmt.Sprintf("bw-%s-%d", path, seq)
	}
	report := func(id string) []byte {
		resp, err := http.Get("http://" + srv.Addr() + "/v1/report?session=" + id)
		if err != nil {
			fail(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			fail(fmt.Errorf("report %s: HTTP %d: %s", id, resp.StatusCode, body))
		}
		return body
	}

	// measure runs one cell: iters sessions, best wall time kept, the
	// last session's report captured for the identity check.
	var wantReport []byte
	ok := true
	measure := func(path string, floor float64, exempt bool, once func(id string) int64) {
		best := time.Duration(1<<63 - 1)
		var bytesOut int64
		var lastID string
		for i := 0; i < *iters; i++ {
			id := sid(path)
			t0 := time.Now()
			bytesOut = once(id)
			if d := time.Since(t0); d < best {
				best = d
			}
			lastID = id
		}
		got := report(lastID)
		if wantReport == nil {
			wantReport = got
		}
		r := Run{
			Path: path, Iters: *iters,
			BestSeconds:   best.Seconds(),
			EventsPerSec:  float64(events) / best.Seconds(),
			WireBytes:     bytesOut,
			FloorApplied:  floor,
			FloorExempt:   exempt,
			ReportMatches: bytes.Equal(got, wantReport),
		}
		f.Runs = append(f.Runs, r)
		fmt.Printf("%-16s best %.3fs, %5.1fM events/s, %7.1fKB/session\n",
			path, r.BestSeconds, r.EventsPerSec/1e6, float64(bytesOut)/1024)
	}

	measure("http-btr1", 0, true, func(id string) int64 {
		// Encode fresh each iteration: every transport pays its encoder.
		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf)
		if err != nil {
			fail(err)
		}
		w.BranchBatch(rec.Events)
		if err := w.Close(); err != nil {
			fail(err)
		}
		n := int64(buf.Len())
		httpIngest(srv.Addr(), id, &buf)
		return n
	})
	measure("http-btr1-gzip", 0, true, func(id string) int64 {
		var buf bytes.Buffer
		gz := gzip.NewWriter(&buf)
		w, err := trace.NewWriter(gz)
		if err != nil {
			fail(err)
		}
		w.BranchBatch(rec.Events)
		if err := w.Close(); err != nil {
			fail(err)
		}
		if err := gz.Close(); err != nil {
			fail(err)
		}
		n := int64(buf.Len())
		httpIngest(srv.Addr(), id, &buf)
		return n
	})
	wireOnce := func(c *wire.Client, id string) {
		sess, err := c.Begin(wire.BeginParams{ID: id})
		if err != nil {
			fail(err)
		}
		if err := sess.Send(rec.Events); err != nil {
			fail(err)
		}
		if sum, err := sess.End(); err != nil {
			fail(err)
		} else if sum.State != "done" {
			fail(fmt.Errorf("wire session %s ended %q: %s", id, sum.State, sum.Error))
		}
	}
	measure("wire", *minWire, false, func(id string) int64 {
		c, err := wire.Dial(srv.WireAddr(), 5*time.Second)
		if err != nil {
			fail(err)
		}
		defer c.Close()
		before := srv.Metrics().Wire.Bytes.Load()
		wireOnce(c, id)
		return srv.Metrics().Wire.Bytes.Load() - before
	})
	shared, err := wire.Dial(srv.WireAddr(), 5*time.Second)
	if err != nil {
		fail(err)
	}
	defer shared.Close()
	measure("wire-shared-conn", *minWire, false, func(id string) int64 {
		before := srv.Metrics().Wire.Bytes.Load()
		wireOnce(shared, id)
		return srv.Metrics().Wire.Bytes.Load() - before
	})

	// Ratios and floors resolve against the http-btr1-gzip cell.
	gzipBest := f.Runs[1].BestSeconds
	for i := range f.Runs {
		r := &f.Runs[i]
		r.RatioVsHTTPGzip = gzipBest / r.BestSeconds
		r.FloorOK = r.FloorExempt || r.RatioVsHTTPGzip >= r.FloorApplied
		status := "ok"
		if !r.FloorOK {
			status = fmt.Sprintf("REGRESSION (floor %.2f)", r.FloorApplied)
			ok = false
		}
		if !r.ReportMatches {
			status += " REPORT-MISMATCH"
			ok = false
		}
		fmt.Printf("%-16s %.2fx vs http+gzip %s\n", r.Path, r.RatioVsHTTPGzip, status)
	}

	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", *out)
	if !ok {
		fail(fmt.Errorf("throughput floor or report-identity violated (see %s)", *out))
	}
}

func httpIngest(addr, id string, body io.Reader) {
	resp, err := http.Post("http://"+addr+"/v1/ingest?session="+id, "application/octet-stream", body)
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		fail(fmt.Errorf("ingest %s: HTTP %d: %s", id, resp.StatusCode, msg))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchwire:", err)
	os.Exit(1)
}
