// Command benchengine guards the internal/engine unification: it
// measures the two throughput-critical adapter paths — parallel BTR2
// replay and daemon HTTP ingest — against the primitive the engine
// replaced (a plain, unsharded core.Profiler driven sequentially) and
// records the numbers as JSON.
//
// The point is regression detection, not peak-throughput bragging: the
// multi-layer refactor folded three bespoke shard pools (replay's
// biasRouter, serve's shardSet, the exp drivers' inline profilers)
// into one engine, and this artifact proves the shared core did not
// tax the paths it absorbed. Each cell's ratio against the plain
// profiler must clear a lenient floor (see -min-replay/-min-daemon);
// the floors are guardrails against gross regressions — batching gone
// wrong, a lock on the hot path — not tight performance contracts,
// because wall-clock on a loaded CI runner is noisy and parallel
// speedups are num_cpu-bounded (a single-core host measures pipeline
// overhead, not scaling).
//
// Usage:
//
//	go run ./tools/benchengine -o results/BENCH_engine.json [-iters 2]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"time"

	"twodprof/internal/bpred"
	"twodprof/internal/core"
	"twodprof/internal/engine"
	"twodprof/internal/progs"
	"twodprof/internal/serve"
	"twodprof/internal/trace"
)

// Run is one measured cell.
type Run struct {
	Path          string  `json:"path"` // plain-sequential | replay-btr2 | daemon-ingest
	Workers       int     `json:"workers"`
	Iters         int     `json:"iters"`
	BestSeconds   float64 `json:"best_seconds"`
	EventsPerSec  float64 `json:"events_per_sec"`
	RatioVsPlain  float64 `json:"ratio_vs_plain"`
	FloorApplied  float64 `json:"floor_applied,omitempty"`
	FloorOK       bool    `json:"floor_ok"`
	FloorExempt   bool    `json:"floor_exempt,omitempty"`
	ReportMatches bool    `json:"report_matches_plain"`
}

// MetricResult groups one metric's sweep.
type MetricResult struct {
	Metric string `json:"metric"`
	Runs   []Run  `json:"runs"`
}

// File is the BENCH_engine.json schema.
type File struct {
	Date       string         `json:"date"`
	GoVersion  string         `json:"go_version"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	NumCPU     int            `json:"num_cpu"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Workload   string         `json:"workload"`
	Events     int64          `json:"events"`
	Note       string         `json:"note"`
	Metrics    []MetricResult `json:"metrics"`
}

func main() {
	out := flag.String("o", "results/BENCH_engine.json", "output file")
	kernel := flag.String("kernel", "fsm", "VM kernel whose trace drives the sweep")
	input := flag.String("input", "train", "kernel input set")
	iters := flag.Int("iters", 3, "timed repetitions per cell (best is kept)")
	warmup := flag.Int("warmup", 1, "discarded warm-up passes per cell")
	minReplay := flag.Float64("min-replay", 0.8, "throughput floor for replay cells, as a fraction of the plain profiler over the same stream")
	minDaemon := flag.Float64("min-daemon", 0.6, "throughput floor for daemon-ingest cells (HTTP transport included)")
	history := flag.String("history", "results/BENCH_history.jsonl", "append a dated one-line summary of this run (empty disables)")
	flag.Parse()

	inst, err := progs.StandardInput(*kernel, *input)
	if err != nil {
		fail(err)
	}
	rec := trace.NewRecorder(0)
	events := inst.Run(rec)

	var b1 bytes.Buffer
	w1, err := trace.NewWriter(&b1)
	if err != nil {
		fail(err)
	}
	w1.BranchBatch(rec.Events)
	if err := w1.Close(); err != nil {
		fail(err)
	}
	var b2 bytes.Buffer
	w2, err := trace.NewBTR2Writer(&b2, trace.BTR2Options{})
	if err != nil {
		fail(err)
	}
	w2.BranchBatch(rec.Events)
	if err := w2.Close(); err != nil {
		fail(err)
	}

	f := File{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workload:   *kernel + "/" + *input,
		Events:     events,
		Note: "internal/engine unification guard: BTR2 replay and daemon HTTP ingest " +
			"through the shared engine vs the pre-engine primitive (plain unsharded " +
			"profiler fed by the sequential trace reader, decode included). Every " +
			"cell's report is byte-identical to the plain profiler's. Ratios are " +
			"wall-clock and num_cpu-bounded; the floors catch gross regressions in " +
			"the shared core, not micro-variance. Daemon cells additionally pay HTTP " +
			"transport, hence the lower floor.",
	}

	ok := true
	for _, metric := range []core.Metric{core.MetricAccuracy, core.MetricBias} {
		cfg := core.DefaultConfig()
		cfg.Metric = metric
		mr := MetricResult{Metric: metric.String()}

		// Baselines: the pre-engine primitive — a plain unsharded
		// profiler fed by the sequential trace reader, decode included,
		// exactly what the replay and serve paths did before the
		// unification. BTR2 decode for the replay cells, BTR1 for the
		// daemon cells (that is what each path ingests). The BTR2
		// baseline's report is the byte-identity reference everywhere.
		var wantJSON []byte
		baseline := func(path string, raw []byte) time.Duration {
			for i := 0; i < *warmup; i++ {
				plainProfile(raw, cfg)
			}
			best := time.Duration(1<<63 - 1)
			for i := 0; i < *iters; i++ {
				t0 := time.Now()
				rep := plainProfile(raw, cfg)
				if d := time.Since(t0); d < best {
					best = d
				}
				if wantJSON == nil {
					wantJSON, err = json.Marshal(rep)
					if err != nil {
						fail(err)
					}
				}
			}
			mr.Runs = append(mr.Runs, Run{
				Path: path, Workers: 1, Iters: *iters,
				BestSeconds:  best.Seconds(),
				EventsPerSec: float64(events) / best.Seconds(),
				RatioVsPlain: 1, FloorOK: true, FloorExempt: true,
				ReportMatches: true,
			})
			fmt.Printf("%s %s: best %.3fs, %.1fM events/s\n",
				metric, path, best.Seconds(), float64(events)/best.Seconds()/1e6)
			return best
		}
		plainBTR2 := baseline("plain-sequential-btr2", b2.Bytes())
		plainBTR1 := baseline("plain-sequential-btr1", b1.Bytes())

		measure := func(path string, workers int, floor float64, plainBest time.Duration, once func() (*core.Report, error)) {
			for i := 0; i < *warmup; i++ {
				if _, err := once(); err != nil {
					fail(err)
				}
			}
			best := time.Duration(1<<63 - 1)
			var rep *core.Report
			for i := 0; i < *iters; i++ {
				t0 := time.Now()
				r, err := once()
				if err != nil {
					fail(err)
				}
				if d := time.Since(t0); d < best {
					best = d
					rep = r
				}
			}
			got, err := json.Marshal(rep)
			if err != nil {
				fail(err)
			}
			r := Run{
				Path: path, Workers: workers, Iters: *iters,
				BestSeconds:   best.Seconds(),
				EventsPerSec:  float64(events) / best.Seconds(),
				RatioVsPlain:  plainBest.Seconds() / best.Seconds(),
				FloorApplied:  floor,
				ReportMatches: bytes.Equal(wantJSON, got),
			}
			r.FloorOK = r.RatioVsPlain >= floor
			if !r.FloorOK || !r.ReportMatches {
				ok = false
			}
			mr.Runs = append(mr.Runs, r)
			status := "ok"
			if !r.FloorOK {
				status = fmt.Sprintf("REGRESSION (floor %.2f)", floor)
			}
			if !r.ReportMatches {
				status += " REPORT-MISMATCH"
			}
			fmt.Printf("%s %s workers=%d: best %.3fs, %.1fM events/s (%.2fx vs plain) %s\n",
				metric, path, workers, r.BestSeconds, r.EventsPerSec/1e6, r.RatioVsPlain, status)
		}

		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			w := workers
			measure("replay-btr2", w, *minReplay, plainBTR2, func() (*core.Report, error) {
				return engine.ProfileStream(bytes.NewReader(b2.Bytes()), cfg,
					engine.Options{Workers: w, Predictor: "gshare-4KB"})
			})
			if runtime.GOMAXPROCS(0) == 1 {
				break // both cells would be identical
			}
		}

		for _, shards := range []int{1, runtime.GOMAXPROCS(0)} {
			sh := shards
			measure("daemon-ingest", sh, *minDaemon, plainBTR1, func() (*core.Report, error) {
				return daemonIngest(cfg, sh, b1.Bytes())
			})
			if runtime.GOMAXPROCS(0) == 1 {
				break
			}
		}

		f.Metrics = append(f.Metrics, mr)
	}

	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", *out)
	if *history != "" {
		if err := appendHistory(*history, f, ok); err != nil {
			fail(err)
		}
		fmt.Printf("appended %s\n", *history)
	}
	if !ok {
		fail(fmt.Errorf("throughput floor or report-identity violated (see %s)", *out))
	}
}

// historyCell is one measured path in a BENCH_history.jsonl record.
type historyCell struct {
	Metric       string  `json:"metric"`
	Path         string  `json:"path"`
	Workers      int     `json:"workers"`
	EventsPerSec float64 `json:"events_per_sec"`
	RatioVsPlain float64 `json:"ratio_vs_plain"`
}

// appendHistory adds a dated one-line summary of the run to the
// append-only history log, so throughput evolution across commits is
// greppable without diffing the full BENCH_engine.json snapshots.
func appendHistory(path string, f File, ok bool) error {
	rec := struct {
		Date      string        `json:"date"`
		Tool      string        `json:"tool"`
		GoVersion string        `json:"go_version"`
		NumCPU    int           `json:"num_cpu"`
		Workload  string        `json:"workload"`
		Events    int64         `json:"events"`
		Pass      bool          `json:"pass"`
		Cells     []historyCell `json:"cells"`
	}{
		Date:      time.Now().UTC().Format(time.RFC3339),
		Tool:      "benchengine",
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Workload:  f.Workload,
		Events:    f.Events,
		Pass:      ok,
	}
	for _, mr := range f.Metrics {
		for _, r := range mr.Runs {
			rec.Cells = append(rec.Cells, historyCell{
				Metric: mr.Metric, Path: r.Path, Workers: r.Workers,
				EventsPerSec: r.EventsPerSec, RatioVsPlain: r.RatioVsPlain,
			})
		}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	fh, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer fh.Close()
	_, err = fh.Write(append(line, '\n'))
	return err
}

// plainProfile is the pre-engine primitive: one unsharded profiler
// fed by the sequential trace reader (decode included, like the paths
// the engine replaced).
func plainProfile(raw []byte, cfg core.Config) *core.Report {
	var pred bpred.Predictor
	if cfg.Metric == core.MetricAccuracy {
		pred = bpred.MustNew("gshare-4KB")
	}
	prof, err := core.NewProfiler(cfg, pred)
	if err != nil {
		fail(err)
	}
	rd, err := trace.OpenReader(bytes.NewReader(raw))
	if err != nil {
		fail(err)
	}
	if _, err := rd.Replay(prof); err != nil {
		fail(err)
	}
	return prof.Finish()
}

// daemonIngest boots a loopback daemon, posts the trace, and decodes
// the resulting report.
func daemonIngest(cfg core.Config, shards int, raw []byte) (*core.Report, error) {
	scfg := serve.DefaultConfig()
	scfg.Addr = "127.0.0.1:0"
	scfg.Shards = shards
	scfg.Predictor = "gshare-4KB"
	scfg.Profile = cfg
	scfg.DrainTimeout = 10 * time.Second
	srv, err := serve.NewServer(scfg)
	if err != nil {
		return nil, err
	}
	if _, err := srv.Start(); err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	resp, err := http.Post("http://"+srv.Addr()+"/v1/ingest?session=bench",
		"application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("ingest status %d: %s", resp.StatusCode, body)
	}
	resp, err = http.Get("http://" + srv.Addr() + "/v1/report?session=bench")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("report status %d", resp.StatusCode)
	}
	var rep core.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchengine:", err)
	os.Exit(1)
}
