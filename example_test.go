package twodprof_test

import (
	"fmt"

	"twodprof"
)

// ExampleProfile shows the whole loop: profile a workload with
// 2D-profiling, then check the verdict for a specific branch against
// measured ground truth.
func ExampleProfile() {
	// The lzchain kernel reproduces gzip's hash-chain walk (the
	// paper's Figure 7); its train input mixes window regions of
	// different redundancy.
	inst, err := twodprof.Kernel("lzchain", "train")
	if err != nil {
		panic(err)
	}
	cfg := twodprof.DefaultConfig()
	cfg.SliceSize = 8000
	cfg.ExecThreshold = 20

	rep, err := twodprof.Profile(inst, cfg, "gshare-4KB")
	if err != nil {
		panic(err)
	}
	chainExit := inst.BranchPC("chain_exit")
	fmt.Println("chain_exit flagged:", rep.IsInputDependent(chainExit))
	// Output:
	// chain_exit flagged: true
}

// ExampleDefineTruth labels input-dependent branches the way the paper
// does: run two input sets under the target predictor and apply the 5 %
// accuracy-delta rule.
func ExampleDefineTruth() {
	train, _ := twodprof.Kernel("typesum", "train")
	ref, _ := twodprof.Kernel("typesum", "ref")
	truth, err := twodprof.DefineTruth(train, ref, "gshare-4KB", 5.0, 500)
	if err != nil {
		panic(err)
	}
	// The type-check branch (the paper's Figure 6 example from gap)
	// flips from easy to hard between the two inputs.
	fmt.Println("typecheck input-dependent:", truth.Labels[train.BranchPC("typecheck")])
	// Output:
	// typecheck input-dependent: true
}

// ExampleCostModel evaluates the paper's equation (3): whether to
// if-convert a branch given its profile.
func ExampleCostModel() {
	m := twodprof.PaperCostModel()
	fmt.Printf("break-even misprediction rate: %.3f\n", m.BreakEvenMisp(0.5))
	fmt.Println("predicate at 9% misses:", m.ShouldPredicate(0.5, 0.09))
	fmt.Println("predicate at 4% misses:", m.ShouldPredicate(0.5, 0.04))
	// Output:
	// break-even misprediction rate: 0.067
	// predicate at 9% misses: true
	// predicate at 4% misses: false
}
