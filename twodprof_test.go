package twodprof

import (
	"strings"
	"testing"
)

func TestPredictorNames(t *testing.T) {
	names := PredictorNames()
	if len(names) == 0 {
		t.Fatal("no predictor names")
	}
	for _, n := range names {
		if _, err := NewPredictor(n); err != nil {
			t.Errorf("NewPredictor(%q): %v", n, err)
		}
	}
	if _, err := NewPredictor("bogus"); err == nil {
		t.Fatal("bogus predictor accepted")
	}
}

func TestBenchmarksCatalog(t *testing.T) {
	if len(Benchmarks()) != 12 {
		t.Fatalf("benchmark count %d", len(Benchmarks()))
	}
	inputs, err := BenchmarkInputs("gzip")
	if err != nil {
		t.Fatal(err)
	}
	if len(inputs) != 8 { // train, ref, ext-1..6
		t.Fatalf("gzip inputs %v", inputs)
	}
	if _, err := BenchmarkInputs("nope"); err == nil {
		t.Fatal("unknown benchmark inputs")
	}
	if _, err := Benchmark("nope", "train"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestProfileOnKernel(t *testing.T) {
	inst, err := Kernel("typesum", "ref")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SliceSize = 10000
	cfg.ExecThreshold = 20
	rep, err := Profile(inst, cfg, "gshare-4KB")
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalExec == 0 || len(rep.Branches) == 0 {
		t.Fatal("empty report")
	}
	// The gap-style type check with phase-mixed data must be flagged.
	if !rep.IsInputDependent(inst.BranchPC("typecheck")) {
		t.Fatalf("typecheck not flagged: %s", rep.FormatBranch(inst.BranchPC("typecheck")))
	}
}

func TestProfileBiasMetric(t *testing.T) {
	inst, err := Kernel("fsm", "ref")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Metric = MetricBias
	cfg.SliceSize = 10000
	cfg.ExecThreshold = 20
	rep, err := Profile(inst, cfg, "") // no predictor needed
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalExec == 0 {
		t.Fatal("empty edge-profiling report")
	}
	// A valid name is accepted (and ignored), but a typo must fail in
	// bias mode exactly as it does in accuracy mode.
	if _, err := Profile(inst, cfg, "gshare-4KB"); err != nil {
		t.Fatalf("valid predictor name rejected in bias mode: %v", err)
	}
	if _, err := Profile(inst, cfg, "gshare-4kb"); err == nil {
		t.Fatal("bad predictor name accepted in bias mode")
	}
}

func TestKernelsCatalog(t *testing.T) {
	if len(Kernels()) != 6 {
		t.Fatalf("kernels %v", Kernels())
	}
	if _, err := Kernel("nope", "train"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestDefineTruthAndEvaluate(t *testing.T) {
	train, err := Kernel("typesum", "train")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Kernel("typesum", "ref")
	if err != nil {
		t.Fatal(err)
	}
	truth, err := DefineTruth(train, ref, "gshare-4KB", 5.0, 500)
	if err != nil {
		t.Fatal(err)
	}
	tc := train.BranchPC("typecheck")
	if !truth.Labels[tc] {
		t.Fatal("typecheck not input-dependent in ground truth")
	}
	cfg := DefaultConfig()
	cfg.SliceSize = 10000
	cfg.ExecThreshold = 20
	rep, err := Profile(train, cfg, "gshare-4KB")
	if err != nil {
		t.Fatal(err)
	}
	ev := EvaluateReport(rep, truth)
	if ev.TP+ev.FN != truth.NumDependent() {
		t.Fatalf("eval inconsistent with truth: %+v", ev)
	}
	if _, err := DefineTruth(train, ref, "bogus", 5, 500); err == nil {
		t.Fatal("bogus predictor accepted")
	}
}

func TestMeasureAccuracy(t *testing.T) {
	inst, _ := Kernel("bsearch", "train")
	overall, per, err := MeasureAccuracy(inst, "gshare-4KB")
	if err != nil {
		t.Fatal(err)
	}
	if overall <= 50 || overall > 100 {
		t.Fatalf("overall %v", overall)
	}
	if len(per) < 3 {
		t.Fatalf("per-branch map %v", per)
	}
	if _, _, err := MeasureAccuracy(inst, "bogus"); err == nil {
		t.Fatal("bogus predictor accepted")
	}
}

func TestPaperCostModel(t *testing.T) {
	m := PaperCostModel()
	if m.ExecPred != 5 || m.MispPenalty != 30 {
		t.Fatalf("cost model %+v", m)
	}
	pol := PredicationPolicy{Model: m}
	d := pol.Decide(BranchProfile{PTaken: 0.5, PMisp: 0.2})
	if d != Predicate {
		t.Fatalf("decision %v", d)
	}
	if !strings.Contains(d.String(), "predicate") {
		t.Fatal("decision string")
	}
}

func TestNewSynthetic(t *testing.T) {
	sb, err := NewSynthetic(SyntheticConfig{
		Name:            "mybench",
		Sites:           60,
		DynamicBranches: 300000,
		DepFraction:     0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	wTrain := sb.Workload("train")
	wOther := sb.Workload("other-data")

	// The whole pipeline works on a custom benchmark.
	truth, err := DefineTruth(wTrain, wOther, "gshare-4KB", 5.0, 500)
	if err != nil {
		t.Fatal(err)
	}
	if truth.Eligible() == 0 {
		t.Fatal("no eligible branches")
	}
	cfg := DefaultConfig()
	cfg.SliceSize = 10000
	rep, err := Profile(wTrain, cfg, "gshare-4KB")
	if err != nil {
		t.Fatal(err)
	}
	ev := EvaluateReport(rep, truth)
	if ev.TP+ev.FP+ev.FN+ev.TN != truth.Eligible() {
		t.Fatalf("evaluation inconsistent: %+v vs %d eligible", ev, truth.Eligible())
	}

	// Determinism: same config, same stream.
	sb2, _ := NewSynthetic(SyntheticConfig{
		Name:            "mybench",
		Sites:           60,
		DynamicBranches: 300000,
		DepFraction:     0.3,
	})
	var r1, r2 Recorder
	sb.Workload("train").Run(&r1)
	sb2.Workload("train").Run(&r2)
	if len(r1.Events) != len(r2.Events) {
		t.Fatal("custom benchmark not reproducible")
	}

	if _, err := NewSynthetic(SyntheticConfig{}); err == nil {
		t.Fatal("nameless benchmark accepted")
	}
}

func TestHardwareProfilerFacade(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SliceSize = 5000
	hw, err := NewHardwareProfiler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := NewPredictor("gshare-4KB")
	if err != nil {
		t.Fatal(err)
	}
	inst, _ := Kernel("fsm", "ref")
	var rec Recorder
	inst.Run(&rec)
	for _, e := range rec.Events {
		p := pred.Predict(e.PC)
		pred.Update(e.PC, e.Taken)
		hw.BranchOutcome(e.PC, e.Taken, p == e.Taken)
	}
	rep := hw.Finish()
	if rep.TotalExec != int64(len(rec.Events)) {
		t.Fatalf("hardware profiler saw %d of %d events", rep.TotalExec, len(rec.Events))
	}
}

func TestMustBenchmarkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBenchmark did not panic")
		}
	}()
	MustBenchmark("nope", "train")
}
