// Package twodprof is a Go implementation of 2D-profiling (Kim,
// Suleman, Mutlu, Patt — "2D-Profiling: Detecting Input-Dependent
// Branches with a Single Input Data Set", CGO 2006).
//
// 2D-profiling predicts, from a single profiling run, whether each
// static conditional branch's profile (prediction accuracy or bias) is
// likely to change across input data sets. It records the branch's
// metric per fixed-size slice of the run and applies three statistical
// tests — MEAN, STD and PAM — to the slice series.
//
// The package is a facade over the internal subsystems:
//
//   - the 2D-profiling engine (internal/core)
//   - software branch predictors (internal/bpred): gshare, perceptron, ...
//   - branch-event streams and trace files (internal/trace)
//   - synthetic SPEC CPU2000 INT workload models (internal/spec)
//   - VM benchmark kernels over real data (internal/vm, internal/progs)
//   - input-dependence ground truth and metrics (internal/metrics)
//   - the paper's predication cost model (internal/predication)
//   - experiment drivers for every table/figure (internal/exp)
//
// Quickstart:
//
//	w := twodprof.MustBenchmark("gap", "train")
//	rep, err := twodprof.Profile(w, twodprof.DefaultConfig(), "gshare-4KB")
//	if err != nil { ... }
//	for _, pc := range rep.InputDependent() {
//		fmt.Println(rep.FormatBranch(pc))
//	}
package twodprof

import (
	"fmt"
	"hash/fnv"

	"twodprof/internal/bpred"
	"twodprof/internal/core"
	"twodprof/internal/metrics"
	"twodprof/internal/predication"
	"twodprof/internal/progs"
	"twodprof/internal/spec"
	"twodprof/internal/synth"
	"twodprof/internal/trace"
)

// Core profiling types.
type (
	// Config holds every 2D-profiling parameter (slice size, test
	// thresholds, metric choice).
	Config = core.Config
	// Profiler is the 2D-profiling engine; it consumes a branch stream
	// and produces a Report.
	Profiler = core.Profiler
	// Report is the outcome of one profiling run.
	Report = core.Report
	// BranchResult is the per-branch verdict and statistics.
	BranchResult = core.BranchResult
	// SlicePoint is one sample of a watched branch's slice series.
	SlicePoint = core.SlicePoint
	// Metric selects accuracy or bias (edge) profiling.
	Metric = core.Metric
)

// Metric values.
const (
	MetricAccuracy = core.MetricAccuracy
	MetricBias     = core.MetricBias
)

// Branch-stream types.
type (
	// PC identifies a static branch site.
	PC = trace.PC
	// Sink consumes branch events.
	Sink = trace.Sink
	// Source produces branch events.
	Source = trace.Source
	// Recorder stores a stream in memory for replay.
	Recorder = trace.Recorder
)

// Predictor is a dynamic branch direction predictor.
type Predictor = bpred.Predictor

// Ground-truth and evaluation types.
type (
	// Truth labels branches as input-dependent or not.
	Truth = metrics.Truth
	// Eval holds the paper's COV/ACC metrics.
	Eval = metrics.Eval
)

// Predication types (the paper's motivating optimisation, §2.1).
type (
	// CostModel is the paper's predication cost model (equations 1-3).
	CostModel = predication.CostModel
	// PredicationPolicy decides per-branch code generation from a
	// profile and the input-dependence verdict.
	PredicationPolicy = predication.Policy
	// BranchProfile is the per-branch profile a policy consults.
	BranchProfile = predication.Profile
	// Decision is a per-branch code-generation choice.
	Decision = predication.Decision
)

// Decision values.
const (
	KeepBranch = predication.KeepBranch
	Predicate  = predication.Predicate
	WishBranch = predication.WishBranch
)

// Workload is a synthetic benchmark model resolved against an input
// set; it implements Source.
type Workload = synth.Workload

// DefaultConfig returns the paper's (scaled) 2D-profiling parameters.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewPredictor constructs a branch predictor by configuration name
// ("gshare-4KB", "perceptron-16KB", "bimodal", ...). PredictorNames
// lists the accepted names.
func NewPredictor(name string) (Predictor, error) { return bpred.New(name) }

// PredictorNames lists the accepted predictor configuration names.
func PredictorNames() []string { return bpred.Names() }

// NewProfiler creates a 2D-profiler with an explicit predictor
// instance. The predictor may be nil for MetricBias.
func NewProfiler(cfg Config, pred Predictor) (*Profiler, error) {
	return core.NewProfiler(cfg, pred)
}

// NewHardwareProfiler creates a 2D-profiler whose prediction outcomes
// are supplied externally through BranchOutcome(pc, taken, correct) —
// the paper's §3.2.2 hardware-support mode, where the target machine's
// real predictor reports hit/miss via performance counters and the
// profiler only maintains the per-branch statistics.
func NewHardwareProfiler(cfg Config) (*Profiler, error) {
	return core.NewHardwareProfiler(cfg)
}

// Online / sharded profiling types. A Snapshot is a consistent
// copy-on-read view of a live profiler's counters; snapshots whose
// branch sets partition disjointly by PC merge into a report identical
// to a single sequential pass (see DESIGN.md §3b).
type (
	// Snapshot is a consistent copy of a profiler's per-branch counters.
	Snapshot = core.Snapshot
	// BranchCounters is one branch's raw counters within a Snapshot.
	BranchCounters = core.BranchCounters
)

// NewShardProfiler creates a profiler for one PC-shard of a split
// stream: outcomes arrive via BranchOutcome and slice boundaries via
// EndSlice, both driven by a sequential front-end that owns the
// predictor and the global slice clock (internal/serve, cmd/profiled).
func NewShardProfiler(cfg Config, predictor string) (*Profiler, error) {
	return core.NewShardProfiler(cfg, predictor)
}

// MergeSnapshots unions shard snapshots with disjoint branch sets into
// one; configurations and predictor names must match.
func MergeSnapshots(snaps ...*Snapshot) (*Snapshot, error) {
	return core.MergeSnapshots(snaps...)
}

// MergeReports merges shard snapshots and evaluates the combined
// report, byte-identical to profiling the unsplit stream.
func MergeReports(snaps ...*Snapshot) (*Report, error) {
	return core.MergeReports(snaps...)
}

// Profile runs a complete 2D-profiling pass: it streams src through a
// fresh profiler using the named predictor and returns the finished
// report. The predictor name is validated in both metric modes, so a
// typo fails loudly instead of silently profiling bias; MetricBias
// additionally accepts an empty name (edge profiling needs no
// predictor).
func Profile(src Source, cfg Config, predictor string) (*Report, error) {
	var p Predictor
	if cfg.Metric == MetricAccuracy || predictor != "" {
		var err error
		p, err = bpred.New(predictor)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Metric == MetricBias {
		p = nil // bias profiling never consults a predictor
	}
	prof, err := core.NewProfiler(cfg, p)
	if err != nil {
		return nil, err
	}
	src.Run(prof)
	return prof.Finish(), nil
}

// Benchmarks lists the modelled SPEC CPU2000 INT benchmarks.
func Benchmarks() []string { return spec.Names() }

// BenchmarkInputs lists the input sets available for a benchmark.
func BenchmarkInputs(name string) ([]string, error) {
	b, err := spec.Get(name)
	if err != nil {
		return nil, err
	}
	return append([]string(nil), b.Inputs...), nil
}

// Benchmark resolves a modelled benchmark against an input set.
func Benchmark(name, input string) (*Workload, error) {
	b, err := spec.Get(name)
	if err != nil {
		return nil, err
	}
	return b.Workload(input)
}

// MustBenchmark is Benchmark panicking on error.
func MustBenchmark(name, input string) *Workload {
	w, err := Benchmark(name, input)
	if err != nil {
		panic(err)
	}
	return w
}

// MeasureAccuracy runs src under the named predictor and returns
// (overall accuracy in percent, per-branch accuracies in percent).
func MeasureAccuracy(src Source, predictor string) (float64, map[PC]float64, error) {
	p, err := bpred.New(predictor)
	if err != nil {
		return 0, nil, err
	}
	acct := bpred.Measure(src, p)
	per := make(map[PC]float64, len(acct.Sites))
	for pc, s := range acct.Sites {
		per[pc] = s.Accuracy()
	}
	return acct.Total.Accuracy(), per, nil
}

// DefineTruth measures two runs of the same program (two input sets)
// under the named target predictor and labels each branch
// input-dependent when its accuracy changes by more than deltaTh
// percentage points (paper: 5). Branches must execute at least minExec
// times in both runs to be labelled.
func DefineTruth(a, b Source, predictor string, deltaTh float64, minExec int64) (*Truth, error) {
	p1, err := bpred.New(predictor)
	if err != nil {
		return nil, err
	}
	p2, err := bpred.New(predictor)
	if err != nil {
		return nil, err
	}
	return metrics.Define(bpred.Measure(a, p1), bpred.Measure(b, p2), deltaTh, minExec), nil
}

// EvaluateReport scores a 2D-profiling report against ground truth,
// returning the paper's COV/ACC metrics.
func EvaluateReport(rep *Report, truth *Truth) Eval {
	return metrics.Evaluate(rep, truth)
}

// PaperCostModel returns the predication cost model parameters of the
// paper's Figure 2.
func PaperCostModel() CostModel { return predication.PaperExample() }

// KernelInstance is a VM benchmark kernel bound to a concrete input
// data set; it implements Source and exposes named branch sites.
type KernelInstance = progs.Instance

// Kernels lists the VM benchmark kernels (programs executed by the
// repository's instrumented virtual machine over generated input data).
func Kernels() []string { return progs.KernelNames() }

// Kernel binds a VM kernel to one of its named inputs ("train", "ref",
// and for lzchain "level1".."level9").
func Kernel(kernel, input string) (*KernelInstance, error) {
	return progs.StandardInput(kernel, input)
}

// SyntheticConfig configures a user-defined synthetic benchmark: a
// population of branch sites whose behaviour depends on named input
// sets, exactly like the bundled SPEC models but with custom
// parameters. Zero fields take the library defaults.
type SyntheticConfig struct {
	// Name identifies the benchmark (required).
	Name string
	// Sites is the number of static branch sites (default 300).
	Sites int
	// DynamicBranches is the approximate dynamic branch count per run
	// (default 2 000 000).
	DynamicBranches int64
	// DepFraction is the fraction of sites that are input-sensitive
	// (default 0.2).
	DepFraction float64
	// HotBias in [0,1] concentrates sensitive sites among hot sites
	// (default 0.5).
	HotBias float64
	// Seed makes the benchmark reproducible (default: derived from
	// Name).
	Seed uint64
}

// SyntheticBenchmark is a user-defined synthetic benchmark; resolve it
// against any input-set name to get a runnable Workload.
type SyntheticBenchmark struct {
	pop *synth.Population
}

// NewSynthetic generates a custom synthetic benchmark. The same config
// always generates the identical benchmark.
func NewSynthetic(cfg SyntheticConfig) (*SyntheticBenchmark, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("twodprof: synthetic benchmark needs a name")
	}
	seed := cfg.Seed
	if seed == 0 {
		h := fnv.New64a()
		h.Write([]byte("synthetic/"))
		h.Write([]byte(cfg.Name))
		seed = h.Sum64()
	}
	pc := synth.DefaultPopulationConfig(cfg.Name, seed)
	if cfg.Sites > 0 {
		pc.NumSites = cfg.Sites
	}
	if cfg.DynamicBranches > 0 {
		pc.DynTarget = cfg.DynamicBranches
	}
	if cfg.DepFraction > 0 {
		pc.DepFrac = cfg.DepFraction
	}
	if cfg.HotBias > 0 {
		pc.HotBias = cfg.HotBias
	}
	return &SyntheticBenchmark{pop: synth.NewPopulation(pc)}, nil
}

// Workload resolves the benchmark against an input-set name. Any name
// is valid; distinct names behave like distinct input data sets.
func (s *SyntheticBenchmark) Workload(input string) *Workload {
	return s.pop.Workload(input)
}
