// Predication: use 2D-profiling verdicts to gate if-conversion (the
// paper's §2.1 motivation) and compare three compilers across input
// sets:
//
//   - profile-trusting: predicates purely on equation (3) with the
//     train profile,
//   - conservative: leaves input-dependent branches as branches,
//   - wish-branch: emits wish branches for input-dependent branches so
//     the hardware decides at run time.
//
// The run-time cost of each compiler's decisions is then evaluated
// under every input set's *actual* behaviour.
//
//	go run ./examples/predication
package main

import (
	"fmt"
	"log"

	"twodprof"
)

func main() {
	const bench = "gzip"
	inputs, err := twodprof.BenchmarkInputs(bench)
	if err != nil {
		log.Fatal(err)
	}

	// Profile the train input once: per-branch taken rates and
	// misprediction rates plus the 2D input-dependence verdicts.
	train := twodprof.MustBenchmark(bench, "train")
	rep, err := twodprof.Profile(train, twodprof.DefaultConfig(), "gshare-4KB")
	if err != nil {
		log.Fatal(err)
	}
	_, trainAcc, err := twodprof.MeasureAccuracy(train, "gshare-4KB")
	if err != nil {
		log.Fatal(err)
	}
	trainBias := takenRates(train)

	model := twodprof.PaperCostModel()
	compilers := map[string]twodprof.PredicationPolicy{
		"trust-profile": {Model: model, TrustProfile: true},
		"conservative":  {Model: model},
		"wish-branch":   {Model: model, UseWishBranches: true},
	}

	// Per compiler, decide once per branch from the train profile.
	decisions := map[string]map[twodprof.PC]twodprof.Decision{}
	counts := map[string]map[twodprof.Decision]int{}
	for name, pol := range compilers {
		decisions[name] = map[twodprof.PC]twodprof.Decision{}
		counts[name] = map[twodprof.Decision]int{}
		for pc, acc := range trainAcc {
			pr := twodprof.BranchProfile{
				PTaken:         trainBias[pc],
				PMisp:          1 - acc/100,
				InputDependent: rep.IsInputDependent(pc),
			}
			d := pol.Decide(pr)
			decisions[name][pc] = d
			counts[name][d]++
		}
	}
	for name, c := range counts {
		fmt.Printf("%-14s branch=%d predicate=%d wish=%d\n",
			name, c[twodprof.KeepBranch], c[twodprof.Predicate], c[twodprof.WishBranch])
	}

	// Evaluate each compiler's decisions under each input's actual
	// behaviour (execution-weighted cycles per branch region).
	fmt.Printf("\nmean cycles per branch-region instance (lower is better):\n")
	fmt.Printf("%-8s", "input")
	order := []string{"trust-profile", "conservative", "wish-branch"}
	for _, name := range order {
		fmt.Printf("  %-14s", name)
	}
	fmt.Println()
	for _, in := range inputs {
		w := twodprof.MustBenchmark(bench, in)
		_, acc, err := twodprof.MeasureAccuracy(w, "gshare-4KB")
		if err != nil {
			log.Fatal(err)
		}
		bias := takenRates(w)
		execs := execCounts(w)
		fmt.Printf("%-8s", in)
		for _, name := range order {
			pol := compilers[name]
			var cycles, n float64
			for pc, a := range acc {
				d, ok := decisions[name][pc]
				if !ok {
					d = twodprof.KeepBranch // unseen at profile time
				}
				e := float64(execs[pc])
				cycles += e * pol.RuntimeCost(d, bias[pc], 1-a/100)
				n += e
			}
			fmt.Printf("  %-14.4f", cycles/n)
		}
		fmt.Println()
	}
	fmt.Println("\n(trust-profile wins on train but loses on inputs where its predication")
	fmt.Println(" choices were made from untrustworthy, input-dependent profiles;")
	fmt.Println(" wish branches recover most of the predication benefit safely)")
}

// takenRates measures per-branch taken rates of a workload.
func takenRates(src twodprof.Source) map[twodprof.PC]float64 {
	taken := map[twodprof.PC]int64{}
	total := map[twodprof.PC]int64{}
	var rec sinkFunc = func(pc twodprof.PC, t bool) {
		total[pc]++
		if t {
			taken[pc]++
		}
	}
	src.Run(rec)
	out := make(map[twodprof.PC]float64, len(total))
	for pc, n := range total {
		out[pc] = float64(taken[pc]) / float64(n)
	}
	return out
}

// execCounts measures per-branch dynamic execution counts.
func execCounts(src twodprof.Source) map[twodprof.PC]int64 {
	total := map[twodprof.PC]int64{}
	var rec sinkFunc = func(pc twodprof.PC, t bool) { total[pc]++ }
	src.Run(rec)
	return total
}

// sinkFunc adapts a func to twodprof.Sink.
type sinkFunc func(twodprof.PC, bool)

func (f sinkFunc) Branch(pc twodprof.PC, taken bool) { f(pc, taken) }
