// Custombench: define your own synthetic benchmark, profile it in the
// paper's hardware-counter mode (§3.2.2 — the target machine's real
// predictor reports hit/miss and the profiler only keeps statistics),
// and validate the verdicts against measured ground truth.
//
//	go run ./examples/custombench
package main

import (
	"fmt"
	"log"

	"twodprof"
)

func main() {
	// A custom benchmark: 120 branch sites, a third of them
	// input-sensitive, ~600k dynamic branches per run.
	bench, err := twodprof.NewSynthetic(twodprof.SyntheticConfig{
		Name:            "mydb-queryplan",
		Sites:           120,
		DynamicBranches: 600000,
		DepFraction:     0.33,
		HotBias:         0.7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Record the "production" run once; in hardware-counter mode the
	// machine's own predictor produces the hit/miss stream.
	train := bench.Workload("train")
	var rec twodprof.Recorder
	train.Run(&rec)

	cfg := twodprof.DefaultConfig()
	cfg.SliceSize = 20000
	hw, err := twodprof.NewHardwareProfiler(cfg)
	if err != nil {
		log.Fatal(err)
	}
	machinePred, err := twodprof.NewPredictor("perceptron-16KB")
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range rec.Events {
		correct := machinePred.Predict(e.PC) == e.Taken
		machinePred.Update(e.PC, e.Taken)
		hw.BranchOutcome(e.PC, e.Taken, correct)
	}
	rep := hw.Finish()
	fmt.Print(rep.Summary())

	// Ground truth: compare against two other input data sets under
	// the same machine predictor and union the verdicts (§5.2).
	var truths []*twodprof.Truth
	for _, other := range []string{"ref", "q4-heavy"} {
		truth, err := twodprof.DefineTruth(train, bench.Workload(other), "perceptron-16KB", 5.0, 1000)
		if err != nil {
			log.Fatal(err)
		}
		truths = append(truths, truth)
	}
	union := unionTruths(truths)
	fmt.Printf("\nunion truth: %d of %d branches input-dependent\n",
		union.NumDependent(), union.Eligible())
	fmt.Println("2D (hardware counters):", twodprof.EvaluateReport(rep, union))
}

// unionTruths merges pairwise truths: dependent anywhere = dependent.
func unionTruths(ts []*twodprof.Truth) *twodprof.Truth {
	out := &twodprof.Truth{
		DeltaTh: ts[0].DeltaTh,
		Labels:  map[twodprof.PC]bool{},
		Delta:   map[twodprof.PC]float64{},
	}
	for _, t := range ts {
		for pc, dep := range t.Labels {
			out.Labels[pc] = out.Labels[pc] || dep
			if d := t.Delta[pc]; d > out.Delta[pc] {
				out.Delta[pc] = d
			}
		}
	}
	return out
}
