// Compression: the paper's Figure 7 example, end to end. The "lzchain"
// VM kernel reproduces gzip's longest-match hash-chain walk, whose loop
// exit condition couples a data test with --chain_length, where
// max_chain comes from the compression level (gzip's config_table). The
// example shows that
//
//  1. the chain-exit branch's prediction accuracy swings with the
//     compression level (75 % at level 1, ~100 % at level 9), and
//
//  2. 2D-profiling flags the branch as input-dependent from a single
//     run whose data shifts between window regions.
//
//     go run ./examples/compression
package main

import (
	"fmt"
	"log"

	"twodprof"
)

func main() {
	fmt.Println("chain-exit branch accuracy by compression level (gshare-4KB):")
	var exitPC twodprof.PC
	for level := 1; level <= 9; level++ {
		inst, err := twodprof.Kernel("lzchain", fmt.Sprintf("level%d", level))
		if err != nil {
			log.Fatal(err)
		}
		exitPC = inst.BranchPC("chain_exit")
		overall, per, err := twodprof.MeasureAccuracy(inst, "gshare-4KB")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  level %d: chain_exit=%6.2f%%  limit_test=%6.2f%%  program=%6.2f%%\n",
			level, per[exitPC], per[inst.BranchPC("limit_test")], overall)
	}

	// Now profile a single run (the "train" input: level 4 over data
	// whose redundancy shifts across regions) with 2D-profiling.
	inst, err := twodprof.Kernel("lzchain", "train")
	if err != nil {
		log.Fatal(err)
	}
	cfg := twodprof.DefaultConfig()
	cfg.SliceSize = 8000 // kernel runs are shorter than the SPEC models
	cfg.ExecThreshold = 20
	rep, err := twodprof.Profile(inst, cfg, "gshare-4KB")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n2D-profiling on a single lzchain run (train input):")
	for _, pc := range rep.Observed() {
		fmt.Println(" ", rep.FormatBranch(pc))
	}
	if rep.IsInputDependent(exitPC) {
		fmt.Println("\nchain_exit was correctly flagged input-dependent from one input set.")
	} else {
		fmt.Println("\nchain_exit was NOT flagged; try a larger run or smaller slices.")
	}
}
