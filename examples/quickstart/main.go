// Quickstart: profile one benchmark input with 2D-profiling and print
// the branches predicted to be input-dependent.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"twodprof"
)

func main() {
	// A synthetic model of SPEC gap running its train input. Any
	// twodprof.Source works here — the models, a VM kernel, or a
	// recorded trace.
	workload := twodprof.MustBenchmark("gap", "train")

	// Profile with the paper's defaults: a 4 KB gshare software
	// predictor, 50 000-branch slices, MEAN/STD/PAM tests.
	cfg := twodprof.DefaultConfig()
	rep, err := twodprof.Profile(workload, cfg, "gshare-4KB")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(rep.Summary())
	fmt.Println()

	flagged := rep.InputDependent()
	fmt.Printf("branches predicted input-dependent (%d):\n", len(flagged))
	for i, pc := range flagged {
		if i >= 15 {
			fmt.Printf("  ... and %d more\n", len(flagged)-i)
			break
		}
		fmt.Println(" ", rep.FormatBranch(pc))
	}

	// How good was the prediction? Define ground truth the way the
	// paper does: re-measure per-branch accuracy on a second input set
	// and label branches whose accuracy moves more than 5 points.
	ref := twodprof.MustBenchmark("gap", "ref")
	truth, err := twodprof.DefineTruth(workload, ref, "gshare-4KB", 5.0, 2500)
	if err != nil {
		log.Fatal(err)
	}
	ev := twodprof.EvaluateReport(rep, truth)
	fmt.Printf("\nagainst (train, ref) ground truth: %s\n", ev)
}
