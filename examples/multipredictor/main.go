// Multipredictor: the paper's §5.3 question — does 2D-profiling still
// work when the profiler's predictor differs from the target machine's?
// The profiler always uses the small 4 KB gshare; ground truth is
// defined per target predictor. The example also compares raw predictor
// accuracy over the same workloads.
//
//	go run ./examples/multipredictor
package main

import (
	"fmt"
	"log"

	"twodprof"
)

func main() {
	const bench = "gzip"
	train := twodprof.MustBenchmark(bench, "train")
	ref := twodprof.MustBenchmark(bench, "ref")

	// Raw predictor comparison on the train input.
	fmt.Printf("predictor accuracy on %s/train:\n", bench)
	for _, name := range []string{"always-taken", "bimodal", "gag", "pag", "loop", "tournament", "gshare-4KB", "perceptron-16KB"} {
		overall, _, err := twodprof.MeasureAccuracy(train, name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s %6.2f%%\n", name, overall)
	}

	// One 2D-profiling pass with the small gshare profiler.
	rep, err := twodprof.Profile(train, twodprof.DefaultConfig(), "gshare-4KB")
	if err != nil {
		log.Fatal(err)
	}

	// Score it against ground truth defined by different target
	// predictors. The set of input-dependent branches is a property of
	// the *target* predictor (§5.3).
	fmt.Printf("\n2D-profiling (gshare-4KB profiler) vs per-target ground truth:\n")
	for _, target := range []string{"gshare-4KB", "perceptron-16KB", "bimodal"} {
		truth, err := twodprof.DefineTruth(train, ref, target, 5.0, 2500)
		if err != nil {
			log.Fatal(err)
		}
		ev := twodprof.EvaluateReport(rep, truth)
		fmt.Printf("  target %-16s dep=%-4d %s\n", target, truth.NumDependent(), ev)
	}
	fmt.Println("\n(accuracy drops somewhat under predictor mismatch but the profiler")
	fmt.Println(" still separates dependent from independent branches — paper §5.3)")
}
