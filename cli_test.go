package twodprof

// CLI integration tests: build each command and exercise its basic
// invocations end to end. Skipped in -short mode (they shell out to the
// Go toolchain).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmds compiles every command once per test run into a shared
// temp dir (not t.TempDir(), which is removed when the building test
// ends while later tests still need the binary).
var (
	cmdBin    = map[string]string{}
	cmdBinDir string
)

func buildCmd(t *testing.T, name string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	if bin, ok := cmdBin[name]; ok {
		return bin
	}
	if cmdBinDir == "" {
		dir, err := os.MkdirTemp("", "twodprof-cli")
		if err != nil {
			t.Fatal(err)
		}
		cmdBinDir = dir
	}
	bin := filepath.Join(cmdBinDir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	cmdBin[name] = bin
	return bin
}

func runCmd(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIExperimentsList(t *testing.T) {
	bin := buildCmd(t, "experiments")
	out := runCmd(t, bin, "-list")
	for _, id := range []string{"fig2", "fig10", "tab4", "ext-ifconv"} {
		if !strings.Contains(out, id) {
			t.Errorf("-list missing %s:\n%s", id, out)
		}
	}
	out = runCmd(t, bin, "-run", "fig2")
	if !strings.Contains(out, "break-even") {
		t.Errorf("fig2 output missing break-even:\n%s", out)
	}
}

func TestCLIVmasm(t *testing.T) {
	bin := buildCmd(t, "vmasm")
	out := runCmd(t, bin, "kernels")
	if !strings.Contains(out, "lzchain") {
		t.Errorf("kernels listing:\n%s", out)
	}
	src := filepath.Join(t.TempDir(), "p.s")
	if err := os.WriteFile(src, []byte("li r1, 41\naddi r1, r1, 1\nout r1\nhalt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out = runCmd(t, bin, "run", "-f", src)
	if !strings.Contains(out, "out[0]   : 42") {
		t.Errorf("vmasm run output:\n%s", out)
	}
	out = runCmd(t, bin, "check", "-f", src)
	if !strings.Contains(out, "4 instructions") {
		t.Errorf("vmasm check output:\n%s", out)
	}
	out = runCmd(t, bin, "dis", "-f", src)
	if !strings.Contains(out, "li r1, 41") {
		t.Errorf("vmasm dis output:\n%s", out)
	}
	out = runCmd(t, bin, "kernels", "-kernel", "typesum")
	if !strings.Contains(out, "typecheck:") {
		t.Errorf("kernel disassembly missing label:\n%s", out)
	}
}

func TestCLITraceRoundTrip(t *testing.T) {
	tg := buildCmd(t, "tracegen")
	dir := t.TempDir()
	plain := filepath.Join(dir, "t.btr")
	gz := filepath.Join(dir, "t.btr.gz")

	out := runCmd(t, tg, "gen", "-kernel", "fsm", "-input", "train", "-o", plain)
	if !strings.Contains(out, "wrote") {
		t.Fatalf("gen output:\n%s", out)
	}
	runCmd(t, tg, "gen", "-kernel", "fsm", "-input", "train", "-z", "-o", gz)

	for _, f := range []string{plain, gz} {
		info := runCmd(t, tg, "info", "-i", f)
		if !strings.Contains(info, "static sites  : 6") {
			t.Errorf("info on %s:\n%s", f, info)
		}
	}
	replay := runCmd(t, tg, "replay", "-i", plain, "-predictor", "gshare-4KB")
	if !strings.Contains(replay, "accuracy") {
		t.Errorf("replay output:\n%s", replay)
	}

	// The compressed file must be materially smaller.
	sp, _ := os.Stat(plain)
	sg, _ := os.Stat(gz)
	if sg.Size() >= sp.Size() {
		t.Errorf("gzip trace not smaller: %d vs %d", sg.Size(), sp.Size())
	}

	// profile2d consumes the trace.
	p2d := buildCmd(t, "profile2d")
	out = runCmd(t, p2d, "-trace", gz, "-slice", "20000", "-execth", "20")
	if !strings.Contains(out, "2D-profiling report") {
		t.Errorf("profile2d trace output:\n%s", out)
	}
}

func TestCLIProfile2dJSON(t *testing.T) {
	p2d := buildCmd(t, "profile2d")
	out := runCmd(t, p2d, "-kernel", "lzchain", "-input", "train", "-json",
		"-slice", "8000", "-execth", "20")
	var rep Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("JSON output did not parse: %v", err)
	}
	if rep.TotalExec == 0 || len(rep.Branches) == 0 {
		t.Fatalf("empty JSON report: %+v", rep)
	}
}

// TestCLIProfiledEndToEnd drives the online path with the real
// binaries: profiled serves, tracegen streams a generated trace at it
// with -post (writing the same trace to disk), and the daemon's
// /v1/report must match profile2d -json reading that trace from stdin
// byte for byte. Finally SIGINT must shut the daemon down cleanly.
func TestCLIProfiledEndToEnd(t *testing.T) {
	pd := buildCmd(t, "profiled")
	tg := buildCmd(t, "tracegen")
	p2d := buildCmd(t, "profile2d")
	traceFile := filepath.Join(t.TempDir(), "fsm.btr")

	daemon := exec.Command(pd, "-addr", "127.0.0.1:0", "-shards", "4")
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer daemon.Process.Kill()
	// First line: "profiled: listening on 127.0.0.1:PORT (...)"
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("profiled produced no output: %v", sc.Err())
	}
	fields := strings.Fields(sc.Text())
	if len(fields) < 4 {
		t.Fatalf("unexpected startup line %q", sc.Text())
	}
	addr := fields[3]
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	out := runCmd(t, tg, "gen", "-kernel", "fsm", "-input", "train",
		"-o", traceFile, "-post", "http://"+addr+"/v1/ingest?session=cli")
	if !strings.Contains(out, "posted") || !strings.Contains(out, "HTTP 200") {
		t.Fatalf("tracegen -post output:\n%s", out)
	}

	resp, err := http.Get("http://" + addr + "/v1/report?session=cli")
	if err != nil {
		t.Fatal(err)
	}
	served, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("report: status %d err %v", resp.StatusCode, err)
	}

	offline := exec.Command(p2d, "-trace", "-", "-json")
	f, err := os.Open(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	offline.Stdin = f
	want, err := offline.Output()
	if err != nil {
		t.Fatalf("profile2d -trace -: %v", err)
	}
	if !bytes.Equal(want, served) {
		t.Errorf("daemon report (%d bytes) differs from offline profile2d on stdin (%d bytes)",
			len(served), len(want))
	}

	if err := daemon.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := daemon.Wait(); err != nil {
		t.Errorf("profiled did not exit cleanly on SIGINT: %v", err)
	}
}

func TestCLIPredsim(t *testing.T) {
	ps := buildCmd(t, "predsim")
	out := runCmd(t, ps, "-kernel", "bsearch", "-input", "train",
		"-predictors", "gshare-4KB,bimodal,always-taken")
	for _, name := range []string{"gshare-4KB", "bimodal", "always-taken"} {
		if !strings.Contains(out, name) {
			t.Errorf("predsim missing %s:\n%s", name, out)
		}
	}
}
